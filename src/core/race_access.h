#pragma once

// Seqlock-safe access to data protected by an OptimisticReadWriteLock.
//
// Under the optimistic protocol, readers intentionally race with writers and
// discard what they read when validation fails. C++ declares such races
// undefined behaviour unless the conflicting accesses are atomic, so (as the
// paper describes, following Boehm) every field a reader may touch without
// holding the write lock is accessed through relaxed atomic operations:
//
//   * whole-word fields (counts, pointers) are stored as std::atomic<T> and
//     accessed through the relaxed_value<T> wrapper below;
//   * key payloads (tuples) stay plain objects in node arrays — copying them
//     through std::atomic would be prohibitively invasive — and are instead
//     read/written *per scalar element* through std::atomic_ref, which C++20
//     provides exactly for this purpose.
//
// The sequential tree variant bypasses all of this: SeqAccess compiles to
// plain loads and stores with zero overhead, which is what the paper's
// "seq btree" configuration measures.

#include <atomic>
#include <cstddef>
#include <type_traits>

namespace dtree {

/// Concept-ish trait: keys that expose element-wise access for racy copies.
/// Scalar keys qualify trivially; Tuple<N> specialises via data()/size().
template <typename T>
concept ScalarKey = std::is_scalar_v<T>;

template <typename T>
concept ElementwiseKey = requires(T t, const T ct) {
    { ct.data() } -> std::convertible_to<const typename T::value_type*>;
    { t.data() } -> std::convertible_to<typename T::value_type*>;
    { T::static_size() } -> std::convertible_to<std::size_t>;
};

/// Access policy for the concurrent tree: all racy loads/stores relaxed.
struct ConcurrentAccess {
    static constexpr bool concurrent = true;

    // NB: atomic_ref<const T> is C++26; until then the const_cast below is
    // the sanctioned workaround (the referenced object is never modified).
    template <ScalarKey T>
    static T load(const T& src) {
        return std::atomic_ref<T>(const_cast<T&>(src)).load(std::memory_order_relaxed);
    }

    template <ScalarKey T>
    static void store(T& dst, T v) {
        std::atomic_ref<T>(dst).store(v, std::memory_order_relaxed);
    }

    template <ElementwiseKey T>
    static T load(const T& src) {
        using V = typename T::value_type;
        T out;
        for (std::size_t i = 0; i < T::static_size(); ++i) {
            out.data()[i] = std::atomic_ref<V>(const_cast<V&>(src.data()[i]))
                                .load(std::memory_order_relaxed);
        }
        return out;
    }

    template <ElementwiseKey T>
    static void store(T& dst, const T& v) {
        for (std::size_t i = 0; i < T::static_size(); ++i) {
            std::atomic_ref<typename T::value_type>(dst.data()[i])
                .store(v.data()[i], std::memory_order_relaxed);
        }
    }
};

/// Access policy for the sequential tree: plain loads/stores, no fences.
struct SeqAccess {
    static constexpr bool concurrent = false;

    template <typename T>
    static T load(const T& src) {
        return src;
    }

    template <typename T>
    static void store(T& dst, const T& v) {
        dst = v;
    }
};

// ---------------------------------------------------------------------------
// Racy vector loads (the DATATREE_SIMD in-node search kernel)
// ---------------------------------------------------------------------------
//
// The SIMD search kernel (core/btree_detail.h, DESIGN.md §10) reads the
// inner nodes' first/second-column caches (wide tuples) — and, for pair
// keys, the node's AoS key array itself, both kinds (the interleaved pair
// kernel) — with *plain* 256-bit vector loads, NOT through the per-element atomic_ref discipline above. That is a deliberate, documented
// exception to the Boehm-style rules, and it is sound for the same reason
// the rules exist at all:
//
//   1. Scope. Vector loads are issued ONLY between start_read()/validate()
//      of the node's OptimisticReadWriteLock, or while the caller holds the
//      node's write lock (where there is no race at all). There is no third
//      call site.
//   2. Discard-on-conflict. Everything computed from a racy vector load is a
//      pair of *counts* into the key array. Counts are only acted upon after
//      a successful validate()/try_upgrade_to_write() on the very lease under
//      which the loads ran; if a writer intervened, validation fails and the
//      counts are thrown away — exactly the seqlock argument the paper makes
//      for its relaxed scalar reads. Torn lanes can produce out-of-bounds-
//      *looking* counts only within [0, n] (each lane contributes 0 or 1),
//      so even a garbage result stays a safe array index before validation.
//   3. Formal UB vs. practice. The C++ abstract machine calls the racing
//      non-atomic load undefined; on every ISA the kernel compiles for, an
//      unordered vector load from validly-mapped memory yields *some* value
//      per lane and has no other effect. We confine the formal UB to this
//      one shim so sanitizers can reason about the rest of the tree: under
//      ThreadSanitizer (which instruments exactly the C++-level race) the
//      vector path is compiled OUT below, and SimdSearch's scalar fallback
//      reads the column through Access::load's relaxed atomics — the
//      TSan-clean path that scripts/check.sh's TSan leg exercises.
//
// DTREE_SIMD_VECTOR is the single gate the kernel tests: it folds the vector
// path away when the build disables SIMD (-DDATATREE_SIMD=OFF), the target
// is not x86-64, or a thread sanitizer is active.
//
// Leaf layout v2 (WithFingerprints, DESIGN.md §15) adds one more racy vector
// consumer: fp_find's _mm256_cmpeq_epi8 over a leaf's one-byte fingerprint
// array. The same 3-point argument covers it, with one strengthening and one
// extra ordering obligation:
//
//   * Point 2 is *stronger* here than for the column kernels: a fingerprint
//     match is never acted on directly — it only nominates a slot for full
//     key verification (itself an Access::load racy read, re-checked by the
//     same validate()), and a torn fingerprint byte can therefore cause at
//     most a spurious verify (counted as fp_false_hits) or a miss that the
//     seqlock retry repairs. No value computed from the vector load survives
//     a failed validation.
//   * Writers publish a slot's fingerprint with a RELEASE store ordered
//     after the per-element key stores (Node::fp_publish), so any reader —
//     including the TSan-visible scalar fallback, which reads fingerprints
//     through per-byte relaxed atomics — that observes the byte and then
//     verifies the slot reads fully-written key elements. Readers that race
//     with the pre-publish window simply don't see the slot yet; the
//     append-zone protocol (count published after fingerprint) makes that
//     window invisible to the merged view.

#if !defined(DATATREE_SIMD)
// Standalone header use (no CMake configure): default to enabled where the
// toolchain supports the target("avx2") attribute + runtime dispatch.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define DATATREE_SIMD 1
#else
#define DATATREE_SIMD 0
#endif
#endif

#if defined(__SANITIZE_THREAD__)
#define DTREE_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DTREE_TSAN 1
#endif
#endif
#if !defined(DTREE_TSAN)
#define DTREE_TSAN 0
#endif

#if DATATREE_SIMD && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__)) && !DTREE_TSAN
#define DTREE_SIMD_VECTOR 1
#else
#define DTREE_SIMD_VECTOR 0
#endif

namespace simd_shim {

/// Whether this translation unit compiled the racy-vector-load path in.
/// (Runtime CPU dispatch still applies on top; see detail::simd in
/// btree_detail.h.)
inline constexpr bool vector_loads_compiled = (DTREE_SIMD_VECTOR == 1);

} // namespace simd_shim

/// A word-sized field that is racy in concurrent mode and plain otherwise.
/// Loads/stores are relaxed; ordering comes from the enclosing lock protocol
/// (acquire on lease acquisition/validation, release on end_write).
template <typename T, bool Concurrent>
class relaxed_value;

template <typename T>
class relaxed_value<T, true> {
public:
    relaxed_value() : v_{} {}
    explicit relaxed_value(T v) : v_(v) {}

    T load() const { return v_.load(std::memory_order_relaxed); }
    void store(T v) { v_.store(v, std::memory_order_relaxed); }

    /// Publication accessors for pointers to freshly constructed nodes.
    /// A reader that dereferences such a pointer WITHOUT first validating a
    /// lease on the node that published it (the bottom-up split's parent
    /// walk, the root fetch before its lease is checked) gets no
    /// happens-before edge from the relaxed pair above, so the new node's
    /// lock/field initialisation would race with the reader's first access.
    /// Release-store on publish + acquire-load on those paths closes the
    /// gap; on x86 both compile to plain moves.
    T load_acquire() const { return v_.load(std::memory_order_acquire); }
    void store_release(T v) { v_.store(v, std::memory_order_release); }

private:
    std::atomic<T> v_;
};

template <typename T>
class relaxed_value<T, false> {
public:
    relaxed_value() : v_{} {}
    explicit relaxed_value(T v) : v_(v) {}

    T load() const { return v_; }
    void store(T v) { v_ = v; }

    T load_acquire() const { return v_; }
    void store_release(T v) { v_ = v; }

private:
    T v_;
};

} // namespace dtree

#pragma once

// Seqlock-safe access to data protected by an OptimisticReadWriteLock.
//
// Under the optimistic protocol, readers intentionally race with writers and
// discard what they read when validation fails. C++ declares such races
// undefined behaviour unless the conflicting accesses are atomic, so (as the
// paper describes, following Boehm) every field a reader may touch without
// holding the write lock is accessed through relaxed atomic operations:
//
//   * whole-word fields (counts, pointers) are stored as std::atomic<T> and
//     accessed through the relaxed_value<T> wrapper below;
//   * key payloads (tuples) stay plain objects in node arrays — copying them
//     through std::atomic would be prohibitively invasive — and are instead
//     read/written *per scalar element* through std::atomic_ref, which C++20
//     provides exactly for this purpose.
//
// The sequential tree variant bypasses all of this: SeqAccess compiles to
// plain loads and stores with zero overhead, which is what the paper's
// "seq btree" configuration measures.

#include <atomic>
#include <cstddef>
#include <type_traits>

namespace dtree {

/// Concept-ish trait: keys that expose element-wise access for racy copies.
/// Scalar keys qualify trivially; Tuple<N> specialises via data()/size().
template <typename T>
concept ScalarKey = std::is_scalar_v<T>;

template <typename T>
concept ElementwiseKey = requires(T t, const T ct) {
    { ct.data() } -> std::convertible_to<const typename T::value_type*>;
    { t.data() } -> std::convertible_to<typename T::value_type*>;
    { T::static_size() } -> std::convertible_to<std::size_t>;
};

/// Access policy for the concurrent tree: all racy loads/stores relaxed.
struct ConcurrentAccess {
    static constexpr bool concurrent = true;

    // NB: atomic_ref<const T> is C++26; until then the const_cast below is
    // the sanctioned workaround (the referenced object is never modified).
    template <ScalarKey T>
    static T load(const T& src) {
        return std::atomic_ref<T>(const_cast<T&>(src)).load(std::memory_order_relaxed);
    }

    template <ScalarKey T>
    static void store(T& dst, T v) {
        std::atomic_ref<T>(dst).store(v, std::memory_order_relaxed);
    }

    template <ElementwiseKey T>
    static T load(const T& src) {
        using V = typename T::value_type;
        T out;
        for (std::size_t i = 0; i < T::static_size(); ++i) {
            out.data()[i] = std::atomic_ref<V>(const_cast<V&>(src.data()[i]))
                                .load(std::memory_order_relaxed);
        }
        return out;
    }

    template <ElementwiseKey T>
    static void store(T& dst, const T& v) {
        for (std::size_t i = 0; i < T::static_size(); ++i) {
            std::atomic_ref<typename T::value_type>(dst.data()[i])
                .store(v.data()[i], std::memory_order_relaxed);
        }
    }
};

/// Access policy for the sequential tree: plain loads/stores, no fences.
struct SeqAccess {
    static constexpr bool concurrent = false;

    template <typename T>
    static T load(const T& src) {
        return src;
    }

    template <typename T>
    static void store(T& dst, const T& v) {
        dst = v;
    }
};

/// A word-sized field that is racy in concurrent mode and plain otherwise.
/// Loads/stores are relaxed; ordering comes from the enclosing lock protocol
/// (acquire on lease acquisition/validation, release on end_write).
template <typename T, bool Concurrent>
class relaxed_value;

template <typename T>
class relaxed_value<T, true> {
public:
    relaxed_value() : v_{} {}
    explicit relaxed_value(T v) : v_(v) {}

    T load() const { return v_.load(std::memory_order_relaxed); }
    void store(T v) { v_.store(v, std::memory_order_relaxed); }

    /// Publication accessors for pointers to freshly constructed nodes.
    /// A reader that dereferences such a pointer WITHOUT first validating a
    /// lease on the node that published it (the bottom-up split's parent
    /// walk, the root fetch before its lease is checked) gets no
    /// happens-before edge from the relaxed pair above, so the new node's
    /// lock/field initialisation would race with the reader's first access.
    /// Release-store on publish + acquire-load on those paths closes the
    /// gap; on x86 both compile to plain moves.
    T load_acquire() const { return v_.load(std::memory_order_acquire); }
    void store_release(T v) { v_.store(v, std::memory_order_release); }

private:
    std::atomic<T> v_;
};

template <typename T>
class relaxed_value<T, false> {
public:
    relaxed_value() : v_{} {}
    explicit relaxed_value(T v) : v_(v) {}

    T load() const { return v_; }
    void store(T v) { v_ = v; }

    T load_acquire() const { return v_; }
    void store_release(T v) { v_ = v; }

private:
    T v_;
};

} // namespace dtree

#pragma once

// Fixed-arity integer tuples — the element type of Datalog relations (§2).
// Relations in this reproduction are sets of Tuple<Arity>; the evaluator and
// all benchmarks use Tuple<2> ("2D points", the paper's most relevant case)
// but the type is generic in arity.

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>
#include <type_traits>

namespace dtree {

/// Domain of Datalog values. Soufflé uses 32-bit RAM domains; the paper's
/// micro-benchmarks use size_t 2D points. 64 bits covers both and keeps
/// per-element atomic_ref accesses lock-free on every relevant platform.
using RamDomain = std::uint64_t;

template <std::size_t Arity, typename T = RamDomain>
struct Tuple {
    using value_type = T;

    std::array<T, Arity> values{};

    Tuple() = default;

    /// Construct from up to Arity values, zero-padding the rest:
    /// Tuple<2>{a, b}, or Tuple<4>{a, b} for padded storage tuples.
    template <typename... Args>
        requires(sizeof...(Args) <= Arity && sizeof...(Args) > 0 &&
                 (std::is_convertible_v<Args, T> && ...))
    constexpr Tuple(Args... args) : values{static_cast<T>(args)...} {}

    static constexpr std::size_t static_size() { return Arity; }
    static constexpr std::size_t arity() { return Arity; }

    T* data() { return values.data(); }
    const T* data() const { return values.data(); }

    T& operator[](std::size_t i) { return values[i]; }
    const T& operator[](std::size_t i) const { return values[i]; }

    friend constexpr bool operator==(const Tuple& a, const Tuple& b) {
        return a.values == b.values;
    }

    /// Lexicographic order — the total order all indexes rely on (§2).
    friend constexpr auto operator<=>(const Tuple& a, const Tuple& b) {
        return a.values <=> b.values;
    }

    friend std::ostream& operator<<(std::ostream& os, const Tuple& t) {
        os << '(';
        for (std::size_t i = 0; i < Arity; ++i) {
            if (i) os << ',';
            os << t.values[i];
        }
        return os << ')';
    }
};

/// Smallest tuple with the given first component: used to build range-query
/// bounds like lower_bound({x, 0}) in the transitive-closure example.
template <std::size_t Arity, typename T = RamDomain>
constexpr Tuple<Arity, T> prefix_low(T first) {
    Tuple<Arity, T> t;
    t[0] = first;
    return t;
}

/// Largest tuple with the given first component.
template <std::size_t Arity, typename T = RamDomain>
constexpr Tuple<Arity, T> prefix_high(T first) {
    Tuple<Arity, T> t;
    t[0] = first;
    for (std::size_t i = 1; i < Arity; ++i) t[i] = std::numeric_limits<T>::max();
    return t;
}

} // namespace dtree

namespace std {

/// Hash support so tuples drop into unordered_set / the concurrent hash set
/// baselines unchanged (FNV-1a over the elements).
template <size_t Arity, typename T>
struct hash<dtree::Tuple<Arity, T>> {
    size_t operator()(const dtree::Tuple<Arity, T>& t) const noexcept {
        size_t h = 1469598103934665603ull;
        for (size_t i = 0; i < Arity; ++i) {
            h ^= static_cast<size_t>(t[i]);
            h *= 1099511628211ull;
        }
        return h;
    }
};

} // namespace std

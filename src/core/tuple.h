#pragma once

// Fixed-arity integer tuples — the element type of Datalog relations (§2).
// Relations in this reproduction are sets of Tuple<Arity>; the evaluator and
// all benchmarks use Tuple<2> ("2D points", the paper's most relevant case)
// but the type is generic in arity.

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>
#include <type_traits>

namespace dtree {

/// Domain of Datalog values. Soufflé uses 32-bit RAM domains; the paper's
/// micro-benchmarks use size_t 2D points. 64 bits covers both and keeps
/// per-element atomic_ref accesses lock-free on every relevant platform.
using RamDomain = std::uint64_t;

template <std::size_t Arity, typename T = RamDomain>
struct Tuple {
    using value_type = T;

    std::array<T, Arity> values{};

    Tuple() = default;

    /// Construct from up to Arity values, zero-padding the rest:
    /// Tuple<2>{a, b}, or Tuple<4>{a, b} for padded storage tuples.
    template <typename... Args>
        requires(sizeof...(Args) <= Arity && sizeof...(Args) > 0 &&
                 (std::is_convertible_v<Args, T> && ...))
    constexpr Tuple(Args... args) : values{static_cast<T>(args)...} {}

    static constexpr std::size_t static_size() { return Arity; }
    static constexpr std::size_t arity() { return Arity; }

    T* data() { return values.data(); }
    const T* data() const { return values.data(); }

    T& operator[](std::size_t i) { return values[i]; }
    const T& operator[](std::size_t i) const { return values[i]; }

    friend constexpr bool operator==(const Tuple& a, const Tuple& b) {
        return a.values == b.values;
    }

    /// Lexicographic order — the total order all indexes rely on (§2).
    friend constexpr auto operator<=>(const Tuple& a, const Tuple& b) {
        return a.values <=> b.values;
    }

    friend std::ostream& operator<<(std::ostream& os, const Tuple& t) {
        os << '(';
        for (std::size_t i = 0; i < Arity; ++i) {
            if (i) os << ',';
            os << t.values[i];
        }
        return os << ')';
    }
};

/// Smallest tuple with the given first component: used to build range-query
/// bounds like lower_bound({x, 0}) in the transitive-closure example.
template <std::size_t Arity, typename T = RamDomain>
constexpr Tuple<Arity, T> prefix_low(T first) {
    Tuple<Arity, T> t;
    t[0] = first;
    return t;
}

/// Largest tuple with the given first component.
template <std::size_t Arity, typename T = RamDomain>
constexpr Tuple<Arity, T> prefix_high(T first) {
    Tuple<Arity, T> t;
    t[0] = first;
    for (std::size_t i = 1; i < Arity; ++i) t[i] = std::numeric_limits<T>::max();
    return t;
}

// ---------------------------------------------------------------------------
// Key fingerprints (the one-byte membership filter of the leaf layout v2,
// DESIGN.md §15)
// ---------------------------------------------------------------------------

namespace fp_detail {
/// Fibonacci-hashing multiplier (2^64 / phi): one multiply diffuses every
/// input bit into the top byte, which is all the fingerprint keeps.
inline constexpr std::uint64_t kFpMix = 0x9E3779B97F4A7C15ull;
} // namespace fp_detail

/// One-byte fingerprint of a key, stored per leaf slot by the v2 leaf layout
/// so membership probes reject non-matching slots with a single SIMD byte
/// compare instead of a key comparison. Requirements: deterministic, a pure
/// function of the key VALUE (equal keys must collide — the probe relies on
/// it), and well-spread in its low-entropy inputs (dense integer domains,
/// grid tuples). Collisions are benign: a matching byte only nominates the
/// slot for full key verification (fp_false_hits counts those).
template <typename T>
    requires(std::is_arithmetic_v<T>)
constexpr std::uint8_t key_fingerprint(T k) {
    return static_cast<std::uint8_t>(
        (static_cast<std::uint64_t>(k) * fp_detail::kFpMix) >> 56);
}

/// Tuples hash ALL elements (FNV-1a combine, then one mixing multiply so the
/// top byte depends on every element): Datalog relations are dominated by
/// tuples sharing their leading columns, where a first-column-only byte
/// would collide across whole leaves.
template <std::size_t Arity, typename T>
constexpr std::uint8_t key_fingerprint(const Tuple<Arity, T>& t) {
    std::uint64_t h = 1469598103934665603ull;
    for (std::size_t i = 0; i < Arity; ++i) {
        h ^= static_cast<std::uint64_t>(t[i]);
        h *= 1099511628211ull;
    }
    return static_cast<std::uint8_t>((h * fp_detail::kFpMix) >> 56);
}

// ---------------------------------------------------------------------------
// First-column extraction (the SoA key-column cache of the cache-conscious
// descent kernel, DESIGN.md §10)
// ---------------------------------------------------------------------------

/// Trait describing the *first column* of a key: the scalar that decides the
/// vast majority of lexicographic comparisons. Nodes mirror it into a dense
/// structure-of-arrays cache so in-node search scans one contiguous scalar
/// array instead of strided whole-key tuples (FB+-tree's memory-optimized
/// layout, arXiv 2503.23397), and SimdSearch vectorizes over it.
///
///   available  the key exposes an arithmetic first column; without it the
///              column cache does not exist and SimdSearch is not viable
///   identity   the column IS the whole key bit-for-bit (scalar keys): the
///              node's key array doubles as the column, no extra storage
///   covers     column order + equality fully determine key order + equality
///              (scalars, Tuple<1>): the tie-range comparator fallback is
///              statically dead
///   second_available  the key also exposes an arithmetic SECOND column
///              (element 1 of a Tuple<Arity>=2>). Datalog relations are
///              dominated by low-arity tuples whose first column is massively
///              duplicated (a 1000x1000 grid has 1000 tuples per first
///              column, so whole leaves share one value); a second cached
///              column lets the kernel resolve those tie ranges with another
///              dense scan instead of strided whole-key comparisons
///   pair_covers  (column0, column1) order + equality fully determine key
///              order + equality (Tuple<2> — the paper's key type): the
///              comparator fallback is statically dead for the pair scan too
template <typename Key>
struct first_column {
    static constexpr bool available = false;
    static constexpr bool identity = false;
    static constexpr bool covers = false;
    static constexpr bool second_available = false;
    static constexpr bool pair_covers = false;
    using type = unsigned char; // placeholder; never stored or read
};

/// Scalar keys: the key is its own first column.
template <typename Key>
    requires(std::is_arithmetic_v<Key>)
struct first_column<Key> {
    static constexpr bool available = true;
    static constexpr bool identity = true;
    static constexpr bool covers = true;
    static constexpr bool second_available = false;
    static constexpr bool pair_covers = true;
    using type = Key;
    static constexpr type extract(const Key& k) { return k; }
};

/// Tuples of arithmetic elements: element 0 is the first column. For
/// Arity == 1 the column still lives in a separate cache (the storage types
/// differ) but fully covers the key, so ties never consult the comparator.
template <std::size_t Arity, typename T>
    requires(std::is_arithmetic_v<T> && Arity >= 1)
struct first_column<Tuple<Arity, T>> {
    static constexpr bool available = true;
    static constexpr bool identity = false;
    static constexpr bool covers = (Arity == 1);
    static constexpr bool second_available = (Arity >= 2);
    static constexpr bool pair_covers = (Arity <= 2);
    using type = T;
    static constexpr type extract(const Tuple<Arity, T>& k) { return k[0]; }
    static constexpr type extract_second(const Tuple<Arity, T>& k) {
        static_assert(Arity >= 2);
        return k[1];
    }
};

} // namespace dtree

namespace std {

/// Hash support so tuples drop into unordered_set / the concurrent hash set
/// baselines unchanged (FNV-1a over the elements).
template <size_t Arity, typename T>
struct hash<dtree::Tuple<Arity, T>> {
    size_t operator()(const dtree::Tuple<Arity, T>& t) const noexcept {
        size_t h = 1469598103934665603ull;
        for (size_t i = 0; i < Arity; ++i) {
            h ^= static_cast<size_t>(t[i]);
            h *= 1099511628211ull;
        }
        return h;
    }
};

} // namespace std

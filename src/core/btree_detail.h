#pragma once

// Node machinery, in-node search policies, and the in-order iterator of the
// specialized B-tree (§3). This is a *classic* B-tree — keys live in inner
// nodes too — matching the structure the paper describes: a split keeps half
// of the keys in the existing node, moves half to a new sibling, and promotes
// the median to the parent.
//
// Concurrency-relevant layout rules (§3.1):
//   * every node carries its own OptimisticReadWriteLock;
//   * a node's keys, element count and child pointers are protected by the
//     node's own lock;
//   * a node's parent pointer and position-in-parent are protected by the
//     *parent's* lock (or the tree's root lock for the root node);
//   * nodes are never freed or moved while the tree lives, so stale pointers
//     read under a failed lease are always safe to *hold* (never to use).

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "core/comparator.h"
#include "core/optimistic_lock.h"
#include "core/race_access.h"
#include "core/tuple.h"
#include "util/metrics.h"

#if DTREE_SIMD_VECTOR
#include <immintrin.h>
#endif

namespace dtree::detail {

/// Prefetch the hot head of a node: its lock/header line plus the start of
/// the key-column cache (which directly follows the header, see Node below).
/// Issued on the pointer loaded during descent, BEFORE the parent's lease is
/// validated — prefetching is side-effect-free, so even a stale pointer that
/// validation is about to reject is safe to prefetch (nodes are never freed
/// while the tree lives, §3.1).
template <typename NodePtr>
inline void prefetch_node(const NodePtr* n) {
    if (!n) return;
    const char* p = reinterpret_cast<const char*>(n);
    __builtin_prefetch(p, 0, 3);
    __builtin_prefetch(p + 64, 0, 3);
}

/// Default number of keys per node: targets ~512 bytes of key payload, the
/// sweet spot found by the ablation_node_size bench (several cache lines per
/// node amortise the per-node traversal cost; cf. Google's btree defaults).
template <typename Key>
constexpr unsigned default_block_size() {
    constexpr std::size_t target = 512;
    constexpr std::size_t n = target / sizeof(Key);
    return n < 3 ? 3u : static_cast<unsigned>(n);
}

/// True when the key array is itself a dense, fully-covering first-column
/// array: scalars (identity) and Tuple<1> (layout-compatible with one).
template <typename Key>
constexpr bool dense_column_key() {
    using FC = dtree::first_column<Key>;
    if constexpr (!FC::available) {
        return false;
    } else {
        return FC::identity ||
               (FC::covers && sizeof(Key) == sizeof(typename FC::type) &&
                std::is_standard_layout_v<Key>);
    }
}

// ---------------------------------------------------------------------------
// Nodes
// ---------------------------------------------------------------------------

template <typename Key, unsigned BlockSize, typename Access, bool WithColumn,
          bool WithSnapshots, bool WithFingerprints>
struct InnerNode;

// ---------------------------------------------------------------------------
// Snapshot images (DESIGN.md §11) — only instantiated for WithSnapshots trees
// ---------------------------------------------------------------------------

/// Immutable copy-on-write image of a node's content as of some epoch.
/// `epoch` is the mod_epoch the content carried when it was captured: the
/// image is the correct view of the node for every snapshot boundary B with
/// epoch < B <= (epoch of the NEXT-newer image, or the node's live
/// mod_epoch). Images chain newest-first through `next` with strictly
/// decreasing epochs, are allocated from the tree's RetainArena, and are
/// never freed until the tree is cleared/destroyed (the never-free model).
template <typename Key, unsigned BlockSize>
struct SnapImage {
    SnapImage* next = nullptr; ///< next-older image, or null
    std::uint64_t epoch = 0;   ///< mod_epoch of the captured content
    std::uint32_t n = 0;       ///< valid keys in keys[]
    bool inner = false;        ///< downcast marker for SnapInnerImage
    Key keys[BlockSize];
};

/// Inner-node image: additionally captures the child pointers. Children are
/// live node pointers — safe to hold forever (nodes are never freed or moved
/// while the tree lives); a snapshot reader recursing through them applies
/// the same per-node version selection, so post-boundary structural changes
/// below are invisible.
template <typename Key, unsigned BlockSize, typename NodeT>
struct SnapInnerImage : SnapImage<Key, BlockSize> {
    NodeT* children[BlockSize + 1];
};

/// Per-node snapshot state: the epoch of the node's last modification and
/// the head of its immutable version chain. Both are protected by the node's
/// write lock for writers; snapshot readers load them under a lease (or
/// follow the acquire-published chain). Specialised to an empty member for
/// non-snapshot trees so their node layout stays bit-identical to the seed.
template <typename Key, unsigned BlockSize, bool Concurrent, bool Present>
struct SnapState {
    using ImageT = SnapImage<Key, BlockSize>;
    /// Epoch of the last modification (0 until first touched/marked).
    relaxed_value<std::uint64_t, Concurrent> mod_epoch{};
    /// Newest-first chain of retained images; store_release on publish.
    relaxed_value<ImageT*, Concurrent> versions{};
};
template <typename Key, unsigned BlockSize, bool Concurrent>
struct SnapState<Key, BlockSize, Concurrent, false> {};

// ---------------------------------------------------------------------------
// Leaf layout v2 state (fingerprints + append zone, DESIGN.md §15)
// ---------------------------------------------------------------------------

/// Number of fingerprint bytes a v2 node stores: BlockSize rounded up to a
/// whole 256-bit vector so the AVX2 probe's unaligned loads never read past
/// the array (the tail bytes beyond the valid count are masked out).
constexpr unsigned fp_padded_size(unsigned block_size) {
    return (block_size + 31u) & ~31u;
}

/// Per-node leaf-layout-v2 state (WithFingerprints trees only; specialised
/// to an empty member otherwise so the default node layout stays
/// bit-identical to the seed — same discipline as SnapState):
///
///   fp[i]      one-byte fingerprint of keys[i] (dtree::key_fingerprint),
///              maintained by key_store/key_move/key_copy_from for LEAVES
///              under exactly the locks protecting keys[] itself. The
///              membership probe compares a whole vector of these bytes
///              before touching any key. Inner nodes carry the array (they
///              share the node header) but never read or maintain it.
///   sorted     length of the leaf's sorted prefix: slots [0, sorted) are in
///              key order, slots [sorted, n) are the append zone (arrival
///              order). Consolidation (split / bulk-fill time) merges the
///              zone back and restores sorted == n. Inner nodes are always
///              fully sorted and never read this.
///   min_key /  cached copies of the leaf's extreme keys, so leaf_covers
///   max_key    stays two comparisons even when keys[0]/keys[n-1] are no
///              longer the extremes (append zone). Updated incrementally on
///              append under the write lock; racy readers copy them via
///              Access and validate their lease, like any other node field.
template <typename Key, unsigned BlockSize, bool Concurrent, bool Present>
struct FpState {
    std::uint8_t fp[fp_padded_size(BlockSize)] = {};
    relaxed_value<std::uint32_t, Concurrent> sorted{0};
    Key min_key{};
    Key max_key{};
};
template <typename Key, unsigned BlockSize, bool Concurrent>
struct FpState<Key, BlockSize, Concurrent, false> {};

/// Storage for an inner node's separate first-column cache; specialised away
/// to an empty member when the key has no usable column, the key array
/// doubles as the column (scalars, Tuple<1>), or the register-deinterleaving
/// pair kernel serves the key with no stored mirror at all (Tuple<2>).
template <typename C, unsigned N, bool Present>
struct ColumnStore {
    C col[N];
};
template <typename C, unsigned N>
struct ColumnStore<C, N, false> {};

/// Second-column cache storage (distinct type so both empty stores can share
/// a [[no_unique_address]] byte without colliding).
template <typename C, unsigned N, bool Present>
struct Column2Store {
    C col[N];
};
template <typename C, unsigned N>
struct Column2Store<C, N, false> {};

/// Common node header + key storage. Leaf nodes are exactly this; inner
/// nodes extend it with a child-pointer array and the SoA column caches.
///
/// Cache-conscious layout (DESIGN.md §10): the search kernels want a dense
/// column view of keys[i]'s leading element(s), and the node provides it in
/// the cheapest form per key shape — stored only where storing wins:
///   * scalars / Tuple<1> (dense_keys): keys[] IS the column, zero storage;
///   * Tuple<2> (pair_keys — the paper's key type): NO node stores anything;
///     the SimdSearch kernel materialises both columns *in registers*,
///     deinterleaving the AoS pairs with two shuffles per 4 keys. Two
///     storage-based designs measurably lost here (EXPERIMENTS.md, search
///     ablation note): leaf mirrors inflated the footprint leaves dominate
///     (544 B -> 1056 B per Point leaf) and lost at scale, and inner-only
///     mirrors lost to the register kernel reading the same AoS lines;
///   * Tuple<Arity>=3>: *inner* nodes — a ~1/B, cache-resident fraction of
///     the tree — keep dense SoA mirrors of the first and second elements,
///     narrowing descent to a tie range for the 3-way comparator; leaf
///     footprint stays untouched.
///
/// The inner-node mirrors are maintained by the key_store / key_move /
/// key_copy_from helpers below — every key write in core/btree.h goes
/// through them — under exactly the locks that protect keys[] itself, so
/// the seqlock discipline is unchanged.
///
/// WithColumn is the *policy's* vote (search_wants_column): trees running
/// the classic LinearSearch/BinarySearch kernels never read a column, so
/// they skip the storage and the maintenance entirely — their node layout
/// and write paths stay bit-identical to the pre-column tree.
template <typename Key, unsigned BlockSize, typename Access,
          bool WithColumn = true, bool WithSnapshots = false,
          bool WithFingerprints = false>
struct Node {
    static constexpr bool concurrent = Access::concurrent;
    static constexpr bool with_snapshots = WithSnapshots;
    static constexpr bool with_fingerprints = WithFingerprints;
    using Inner = InnerNode<Key, BlockSize, Access, WithColumn, WithSnapshots,
                            WithFingerprints>;
    using SnapImageT = SnapImage<Key, BlockSize>;
    using SnapInnerImageT = SnapInnerImage<Key, BlockSize, Node>;
    using FirstCol = dtree::first_column<Key>;
    /// The tree's search policy reads column views of this node's keys.
    static constexpr bool has_column = WithColumn && FirstCol::available;
    using col_type = typename FirstCol::type;
    /// keys[] is itself a dense, fully-covering column array (scalars;
    /// Tuple<1> is layout-compatible with one).
    static constexpr bool dense_keys = dense_column_key<Key>();
    /// Pair keys (Tuple<2>): the interleaved register kernel serves BOTH
    /// node kinds straight off the AoS key array, so no node stores any
    /// mirror (measured: the two-pass inner column scan loses to the pair
    /// kernel on the same data — see DESIGN.md §10).
    static constexpr bool pair_keys = has_column && !dense_keys &&
                                      FirstCol::second_available &&
                                      FirstCol::pair_covers;
    /// Inner nodes carry physically separate column caches only for keys
    /// that are neither dense nor pair-coverable (Tuple<Arity >= 3>).
    static constexpr bool inner_columns =
        has_column && !dense_keys && !pair_keys;
    /// Inner nodes also cache the second element (narrowing ties further).
    static constexpr bool inner_column2 =
        inner_columns && FirstCol::second_available;

    /// Per-node optimistic read-write lock (unused by the sequential
    /// instantiation; one idle word keeps the layouts identical).
    OptimisticReadWriteLock lock;

    /// Parent node, or nullptr for the root. Protected by the parent's lock.
    relaxed_value<Inner*, concurrent> parent{nullptr};

    /// Index of this node within parent->children. Protected by the parent's
    /// lock.
    relaxed_value<std::uint32_t, concurrent> position{0};

    /// Number of valid keys in keys[]. Protected by this node's lock.
    relaxed_value<std::uint32_t, concurrent> num_elements{0};

    /// Immutable after construction; distinguishes Inner from leaf nodes.
    const bool inner;

    /// Key storage; slots [0, num_elements) are valid. Protected by this
    /// node's lock; racy readers copy elements via Access and validate.
    Key keys[BlockSize];

    /// Snapshot version state (empty for non-snapshot trees; see SnapState).
    [[no_unique_address]] SnapState<Key, BlockSize, concurrent, WithSnapshots>
        snap;

    /// Leaf layout v2 state (empty for default trees; see FpState).
    [[no_unique_address]] FpState<Key, BlockSize, concurrent, WithFingerprints>
        fpst;

    explicit Node(bool is_inner) : inner(is_inner) {}

    std::uint32_t size() const { return num_elements.load(); }
    bool full() const { return size() == BlockSize; }

    // -- leaf layout v2 accessors (only instantiated when WithFingerprints) --

    const std::uint8_t* fp_bytes() const { return fpst.fp; }
    std::uint32_t fp_sorted() const { return fpst.sorted.load(); }
    void fp_sorted_store(std::uint32_t s) { fpst.sorted.store(s); }

    /// Publishes the fingerprint byte for slot i. Release-ordered in the
    /// concurrent tree so a probe that observes the published byte also
    /// observes the complete key the slot write just stored (the append
    /// path's publish ordering; the seqlock validation remains the actual
    /// safety net — see the race_access.h notes).
    template <typename A>
    void fp_publish(unsigned i, std::uint8_t b) {
        if constexpr (A::concurrent) {
            std::atomic_ref<std::uint8_t>(fpst.fp[i])
                .store(b, std::memory_order_release);
        } else {
            fpst.fp[i] = b;
        }
    }

    // -- key mutation (the ONLY writers of keys[] / the column caches) -------
    // A = SeqAccess for exclusive or unpublished nodes, the tree's Access
    // policy when racy readers may be scanning (i.e. under a held write
    // lock in the concurrent tree).

    /// keys[i] = k; an inner node's column mirrors are kept in sync. The
    /// `inner` test is a perfectly predicted branch on the leaf hot path.
    template <typename A>
    void key_store(unsigned i, const Key& k) {
        A::store(keys[i], k);
        if constexpr (inner_columns) {
            if (inner) {
                auto* in = static_cast<Inner*>(this);
                A::store(in->col_.col[i], FirstCol::extract(k));
                if constexpr (inner_column2) {
                    A::store(in->col2_.col[i], FirstCol::extract_second(k));
                }
            }
        }
        if constexpr (WithFingerprints) {
            // Fingerprint AFTER the key elements: a racy probe that sees the
            // byte sees the whole key (release publish, fp_publish above).
            // Inner separators are never fingerprint-probed — skip them.
            if (!inner) fp_publish<A>(i, dtree::key_fingerprint(k));
        }
    }

    /// keys[dst] = keys[src] within this node (shift loops). Plain reads of
    /// our own slots are fine: the caller has exclusive write access.
    template <typename A>
    void key_move(unsigned dst, unsigned src) {
        A::store(keys[dst], keys[src]);
        if constexpr (inner_columns) {
            if (inner) {
                auto* in = static_cast<Inner*>(this);
                A::store(in->col_.col[dst], in->col_.col[src]);
                if constexpr (inner_column2) {
                    A::store(in->col2_.col[dst], in->col2_.col[src]);
                }
            }
        }
        if constexpr (WithFingerprints) {
            if (!inner) fp_publish<A>(dst, fpst.fp[src]);
        }
    }

    /// keys[dst] = src_node.keys[src] (node splits; dst is unpublished or
    /// write-locked, src is write-locked; both sides are the same kind).
    template <typename A>
    void key_copy_from(unsigned dst, const Node& src_node, unsigned src) {
        A::store(keys[dst], src_node.keys[src]);
        if constexpr (inner_columns) {
            if (inner) {
                assert(src_node.inner);
                auto* in = static_cast<Inner*>(this);
                const auto* sin = static_cast<const Inner*>(&src_node);
                A::store(in->col_.col[dst], sin->col_.col[src]);
                if constexpr (inner_column2) {
                    A::store(in->col2_.col[dst], sin->col2_.col[src]);
                }
            }
        }
        if constexpr (WithFingerprints) {
            if (!inner) fp_publish<A>(dst, src_node.fpst.fp[src]);
        }
    }

    /// Column coherence check for the invariant walker (sequential use):
    /// true iff an inner node's caches mirror keys[i] for all valid slots.
    /// Leaves store no mirror and are vacuously in sync.
    bool column_in_sync() const {
        if constexpr (inner_columns) {
            if (inner) {
                const auto* in = static_cast<const Inner*>(this);
                const std::uint32_t cnt = num_elements.load();
                for (std::uint32_t i = 0; i < cnt; ++i) {
                    if (in->col_.col[i] != FirstCol::extract(keys[i])) {
                        return false;
                    }
                    if constexpr (inner_column2) {
                        if (in->col2_.col[i] !=
                            FirstCol::extract_second(keys[i])) {
                            return false;
                        }
                    }
                }
            }
        }
        return true;
    }

    Inner* as_inner() {
        assert(inner);
        return static_cast<Inner*>(this);
    }
    const Inner* as_inner() const {
        assert(inner);
        return static_cast<const Inner*>(this);
    }
};

template <typename Key, unsigned BlockSize, typename Access,
          bool WithColumn = true, bool WithSnapshots = false,
          bool WithFingerprints = false>
struct InnerNode : Node<Key, BlockSize, Access, WithColumn, WithSnapshots,
                        WithFingerprints> {
    using Base =
        Node<Key, BlockSize, Access, WithColumn, WithSnapshots, WithFingerprints>;
    using col_type = typename Base::col_type;
    static constexpr bool concurrent = Access::concurrent;

    /// First-column cache; col_.col[i] == FirstCol::extract(keys[i]) for
    /// every valid slot. Declared right after the base's keys[] so the
    /// separator payload and its mirrors stay adjacent. Protected by this
    /// node's lock, same as keys[].
    [[no_unique_address]] ColumnStore<col_type, BlockSize,
                                      Base::inner_columns> col_;

    /// Second-column cache; col2_.col[i] == extract_second(keys[i]).
    [[no_unique_address]] Column2Store<col_type, BlockSize,
                                       Base::inner_column2> col2_;

    /// children[i] precedes keys[i]; children[num_elements] is the last.
    /// Protected by this node's lock.
    relaxed_value<Base*, concurrent> children[BlockSize + 1];

    InnerNode() : Base(/*is_inner=*/true) {
        for (auto& c : children) c.store(nullptr);
    }

    /// The dense first-column array (aliases keys[] for scalar keys). Only
    /// instantiable when has_column.
    const col_type* column() const {
        if constexpr (Base::FirstCol::identity) {
            return this->keys;
        } else {
            return col_.col;
        }
    }

    /// The dense second-column array. Only instantiable when inner_column2.
    const col_type* column2() const { return col2_.col; }
};

/// Frees a node and, recursively, everything below it. Only safe without
/// concurrent users (destructor / clear()).
template <typename Key, unsigned BlockSize, typename Access, bool WithColumn,
          bool WithSnapshots, bool WithFingerprints>
void free_subtree(Node<Key, BlockSize, Access, WithColumn, WithSnapshots,
                       WithFingerprints>* n) {
    if (!n) return;
    if (n->inner) {
        auto* in = n->as_inner();
        const std::uint32_t cnt = in->num_elements.load();
        for (std::uint32_t i = 0; i <= cnt; ++i) free_subtree(in->children[i].load());
        delete in;
    } else {
        delete n;
    }
}

// ---------------------------------------------------------------------------
// In-node search policies (ablation: bench/ablation_search)
// ---------------------------------------------------------------------------

/// Linear scan with the 3-way comparator. For small nodes and cheap keys the
/// branch predictor makes this faster than binary search.
struct LinearSearch {
    /// Never reads the column caches — trees configured with this policy
    /// skip the column storage and maintenance entirely.
    static constexpr bool uses_column = false;

    /// First index in [0, n) whose key is >= k, else n.
    template <typename Access, typename Key, typename Comp>
    static unsigned lower(const Key* keys, unsigned n, const Key& k, const Comp& comp) {
        unsigned i = 0;
        while (i < n && comp(Access::load(keys[i]), k) < 0) ++i;
        return i;
    }

    /// First index in [0, n) whose key is > k, else n.
    template <typename Access, typename Key, typename Comp>
    static unsigned upper(const Key* keys, unsigned n, const Key& k, const Comp& comp) {
        unsigned i = 0;
        while (i < n && comp(Access::load(keys[i]), k) <= 0) ++i;
        return i;
    }
};

/// Binary search; O(log B) comparisons per node, the right choice for wide
/// nodes and expensive comparators.
struct BinarySearch {
    static constexpr bool uses_column = false;

    template <typename Access, typename Key, typename Comp>
    static unsigned lower(const Key* keys, unsigned n, const Key& k, const Comp& comp) {
        unsigned lo = 0, hi = n;
        while (lo < hi) {
            const unsigned mid = lo + (hi - lo) / 2;
            if (comp(Access::load(keys[mid]), k) < 0) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        return lo;
    }

    template <typename Access, typename Key, typename Comp>
    static unsigned upper(const Key* keys, unsigned n, const Key& k, const Comp& comp) {
        unsigned lo = 0, hi = n;
        while (lo < hi) {
            const unsigned mid = lo + (hi - lo) / 2;
            if (comp(Access::load(keys[mid]), k) <= 0) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        return lo;
    }
};

// ---------------------------------------------------------------------------
// Vectorized column scan (the SimdSearch kernel)
// ---------------------------------------------------------------------------

namespace simd {

/// Result of one column scan: how many of the n sorted column entries are
/// strictly less than / less-or-equal to the probe column. `lt` is the first
/// index whose column >= probe, `le` the first whose column > probe;
/// [lt, le) is the tie range sharing the probe's first column.
struct Bounds {
    unsigned lt = 0;
    unsigned le = 0;
};

/// Sign-flip mask mapping this column type onto signed integers with the
/// same ordering: AVX2 has only signed compares, so unsigned columns are
/// XOR-ed with the sign bit (probe AND every loaded lane — both sides must
/// shift by the same constant) before comparing. Signed columns need none.
template <typename C>
constexpr auto order_mask() {
    if constexpr (sizeof(C) == 8) {
        return std::is_signed_v<C> ? 0ll
                                   : static_cast<long long>(1ull << 63);
    } else {
        return std::is_signed_v<C> ? 0 : static_cast<int>(0x80000000u);
    }
}

/// Maps a column value onto a signed integer with the same ordering.
template <typename C>
constexpr auto to_ordered(C v) {
    if constexpr (sizeof(C) == 8) {
        return static_cast<long long>(v) ^ order_mask<C>();
    } else {
        return static_cast<int>(v) ^ order_mask<C>();
    }
}

/// Column types the vector kernel handles: 4- or 8-byte integers. Floating
/// and exotic columns take the scalar (branch-free) path below.
template <typename C>
inline constexpr bool vectorizable =
    std::is_integral_v<C> && (sizeof(C) == 8 || sizeof(C) == 4);

#if DTREE_SIMD_VECTOR

/// One-shot runtime ISA dispatch: the kernels are compiled with the
/// target("avx2") attribute (no global -mavx2 codegen shift) and only taken
/// when the CPU reports AVX2.
inline bool have_avx2() {
    // __builtin_cpu_supports reads a libgcc global initialised before main —
    // no function-local static (whose thread-safe guard would cost an
    // acquire-load + branch on every node visited).
    return __builtin_cpu_supports("avx2") != 0;
}

/// AVX2 count of (col[i] < c, col[i] <= c) over 64-bit columns. The loads
/// are RACY BY DESIGN — see the vector-load shim notes in race_access.h:
/// they run only inside a start_read/validate window (or under a held write
/// lock), every lane contributes 0 or 1 so even torn data yields counts in
/// [0, n], and results are discarded unless the lease validates.
__attribute__((target("avx2"))) inline Bounds bounds_avx2_64(
    const void* col, unsigned n, long long c, long long mask) {
    const auto* p = static_cast<const long long*>(col);
    const __m256i vc = _mm256_set1_epi64x(c);
    const __m256i vm = _mm256_set1_epi64x(mask);
    unsigned lt = 0, le = 0, i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i v = _mm256_xor_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i)), vm);
        const unsigned mlt = static_cast<unsigned>(
            _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(vc, v))));
        const unsigned mgt = static_cast<unsigned>(
            _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(v, vc))));
        lt += static_cast<unsigned>(__builtin_popcount(mlt));
        le += 4u - static_cast<unsigned>(__builtin_popcount(mgt));
        // Sorted column: a lane above the probe means every later entry is
        // above too — stop without touching the remaining cache lines.
        if (mgt != 0) return Bounds{lt, le};
    }
    for (; i < n; ++i) {
        const long long v = p[i] ^ mask;
        lt += v < c;
        le += v <= c;
        if (v > c) break;
    }
    return Bounds{lt, le};
}

/// AVX2 count over 32-bit columns (8 lanes per vector).
__attribute__((target("avx2"))) inline Bounds bounds_avx2_32(
    const void* col, unsigned n, int c, int mask) {
    const auto* p = static_cast<const int*>(col);
    const __m256i vc = _mm256_set1_epi32(c);
    const __m256i vm = _mm256_set1_epi32(mask);
    unsigned lt = 0, le = 0, i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i v = _mm256_xor_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i)), vm);
        const unsigned mlt = static_cast<unsigned>(
            _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(vc, v))));
        const unsigned mgt = static_cast<unsigned>(
            _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(v, vc))));
        lt += static_cast<unsigned>(__builtin_popcount(mlt));
        le += 8u - static_cast<unsigned>(__builtin_popcount(mgt));
        if (mgt != 0) return Bounds{lt, le};
    }
    for (; i < n; ++i) {
        const int v = p[i] ^ mask;
        lt += v < c;
        le += v <= c;
        if (v > c) break;
    }
    return Bounds{lt, le};
}

/// AVX2 lexicographic (first, second)-element bounds over a sorted array of
/// PAIR keys stored AoS (Tuple<2, 8-byte integral>): loads 4 whole tuples
/// (two 256-bit vectors), deinterleaves the two columns in registers with
/// two unpacks — unpacklo/hi permute lanes identically, so per-lane pairing
/// survives and lane ORDER is irrelevant to the popcount accumulation — and
/// counts lanes lexicographically below / not-above the probe. Early-exits
/// at the first block containing a lane above the probe (the array is
/// sorted, later blocks contribute nothing), so it touches the same prefix
/// of cache lines an early-exit scalar scan would. Racy-by-design like the
/// column kernels above (race_access.h shim notes apply verbatim: these are
/// plain vector loads of the node's key array inside a lease window).
__attribute__((target("avx2"))) inline Bounds pair_bounds_avx2_64(
    const void* keys, unsigned n, long long c0, long long c1,
    long long mask) {
    const auto* p = static_cast<const long long*>(keys);
    const __m256i vm = _mm256_set1_epi64x(mask);
    const __m256i vc0 = _mm256_set1_epi64x(c0);
    const __m256i vc1 = _mm256_set1_epi64x(c1);
    unsigned lt = 0, le = 0, i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i v0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(p + 2 * i));
        const __m256i v1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(p + 2 * i + 4));
        const __m256i lo = _mm256_xor_si256(_mm256_unpacklo_epi64(v0, v1), vm);
        const __m256i hi = _mm256_xor_si256(_mm256_unpackhi_epi64(v0, v1), vm);
        const __m256i lt0 = _mm256_cmpgt_epi64(vc0, lo);
        const __m256i eq0 = _mm256_cmpeq_epi64(lo, vc0);
        const __m256i lt1 = _mm256_cmpgt_epi64(vc1, hi);
        const __m256i gt1 = _mm256_cmpgt_epi64(hi, vc1);
        // lex<  = (k0 < c0) | (k0 == c0 & k1 < c1)
        // lex<= = (k0 < c0) | (k0 == c0 & ~(k1 > c1))
        const __m256i ltx =
            _mm256_or_si256(lt0, _mm256_and_si256(eq0, lt1));
        const __m256i lex =
            _mm256_or_si256(lt0, _mm256_andnot_si256(gt1, eq0));
        const unsigned mlt = static_cast<unsigned>(
            _mm256_movemask_pd(_mm256_castsi256_pd(ltx)));
        const unsigned mle = static_cast<unsigned>(
            _mm256_movemask_pd(_mm256_castsi256_pd(lex)));
        lt += static_cast<unsigned>(__builtin_popcount(mlt));
        le += static_cast<unsigned>(__builtin_popcount(mle));
        if (mle != 0xFu) return Bounds{lt, le};
    }
    for (; i < n; ++i) {
        const long long a0 = p[2 * i] ^ mask;
        const long long a1 = p[2 * i + 1] ^ mask;
        if (a0 < c0 || (a0 == c0 && a1 < c1)) {
            ++lt;
            ++le;
            continue;
        }
        if (a0 == c0 && a1 == c1) {
            ++le;
            continue;
        }
        break;
    }
    return Bounds{lt, le};
}

/// AVX2 byte-equality mask over one 32-byte fingerprint chunk: bit i of the
/// result is set iff p[i] == b. The load is RACY BY DESIGN (race_access.h
/// shim notes, extended for fingerprints): it runs only inside a
/// start_read/validate window or under a held write lock, a matching bit
/// only *nominates* a slot for full key verification, and the final answer
/// is discarded unless the lease validates.
__attribute__((target("avx2"))) inline std::uint32_t fp_eq_mask_avx2(
    const std::uint8_t* p, std::uint8_t b) {
    const __m256i needle = _mm256_set1_epi8(static_cast<char>(b));
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    return static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, needle)));
}

#else

inline bool have_avx2() { return false; }

#endif // DTREE_SIMD_VECTOR

/// Whether probes on this column type actually take the vector kernel in
/// this build on this CPU (tests and bench.sh condition their counter
/// assertions on it).
template <typename C>
inline bool vector_active() {
    return DTREE_SIMD_VECTOR != 0 && vectorizable<C> && have_avx2();
}

/// Branch-free scalar column scan — the TSan-clean fallback. Reads go
/// through Access::load (relaxed atomic_ref in the concurrent tree), so the
/// sanitizer sees a well-ordered seqlock reader; the setcc-style accumulation
/// keeps it free of data-dependent branches like the vector path.
template <typename Access, typename C>
inline Bounds bounds_scalar(const C* col, unsigned n, C c) {
    Bounds b;
    for (unsigned i = 0; i < n; ++i) {
        const C v = Access::load(col[i]);
        b.lt += static_cast<unsigned>(v < c);
        b.le += static_cast<unsigned>(v <= c);
    }
    return b;
}

/// Column scan entry point: vector kernel when compiled in + CPU-supported +
/// the column width qualifies, else the scalar fallback. Counter accounting
/// (search_simd_probes / search_scalar_fallbacks) lives here so every caller
/// reports uniformly.
///
/// Guarded controls the O(1) boundary guards. They pay off on the dense
/// column caches of *inner* nodes — cache-resident, tie-dominated (Datalog's
/// duplicated first columns make whole-node tie ranges the common separator
/// pattern), where first == last resolves with two loads instead of a scan.
/// They are turned OFF for cold leaf key arrays: there, touching col[n - 1]
/// costs the node's last cache line on the critical path while the
/// early-exit scan usually stops well before it.
template <typename Access, typename C, bool Guarded = true>
inline Bounds column_bounds(const C* col, unsigned n, C c) {
    if (n == 0) return Bounds{0, 0};
    if constexpr (Guarded) {
        // Guard loads follow the same Access discipline as the scan
        // (racy-by-design under the optimistic protocol, results discarded
        // on validation failure).
        const C first = Access::load(col[0]);
        if (c < first) return Bounds{0, 0};
        const C last = Access::load(col[n - 1]);
        if (c > last) return Bounds{n, n};
        if (first == last) return Bounds{0, n}; // c == first == last
    }
#if DTREE_SIMD_VECTOR
    if constexpr (vectorizable<C>) {
        if (have_avx2()) {
            DTREE_METRIC_INC(search_simd_probes);
            if constexpr (sizeof(C) == 8) {
                return bounds_avx2_64(col, n, to_ordered(c), order_mask<C>());
            } else {
                return bounds_avx2_32(col, n, to_ordered(c), order_mask<C>());
            }
        }
    }
#endif
    DTREE_METRIC_INC(search_scalar_fallbacks);
    return bounds_scalar<Access>(col, n, c);
}

/// Key layouts the pair kernel handles: two contiguous 8-byte integral
/// elements with nothing else in the object (Tuple<2, u64/i64>).
template <typename Key, typename C>
inline constexpr bool pair_vectorizable =
    std::is_integral_v<C> && sizeof(C) == 8 && sizeof(Key) == 2 * sizeof(C) &&
    std::is_standard_layout_v<Key>;

/// Scalar early-exit lexicographic pair scan — the TSan-clean fallback for
/// pair keys. Whole keys are copied through Access::load (per-element
/// relaxed atomics in the concurrent tree: exactly the two elements the
/// comparison needs), so the sanitizer sees a well-ordered seqlock reader.
template <typename Access, typename Key, typename C>
inline Bounds pair_bounds_scalar(const Key* keys, unsigned n, C c0, C c1) {
    using FC = dtree::first_column<Key>;
    Bounds b;
    for (unsigned i = 0; i < n; ++i) {
        const Key kv = Access::load(keys[i]);
        const C a0 = FC::extract(kv);
        if (a0 < c0) {
            ++b.lt;
            ++b.le;
            continue;
        }
        if (a0 > c0) break;
        const C a1 = FC::extract_second(kv);
        if (a1 < c1) {
            ++b.lt;
            ++b.le;
            continue;
        }
        if (a1 == c1) {
            ++b.le;
            continue;
        }
        break;
    }
    return b;
}

/// Pair-key bounds entry point (SimdSearch's kernel for Tuple<2>, both node
/// kinds): exact lexicographic lower/upper bounds over the node's AoS key
/// array — no side storage, the column view lives in registers.
///
/// Guarded mirrors column_bounds' policy: ON for inner nodes — hot,
/// tie-dominated separator arrays where a whole-node tie resolves with two
/// key loads — and OFF for cold leaves, where a guard would have to touch
/// keys[n - 1] (the leaf's LAST cache line) on the critical path while the
/// early-exit scan below usually never reaches it. The appending pattern
/// leaf guards would serve is already fast-pathed one level up by the slot
/// hints (node_lower_hinted's two boundary comparisons).
template <typename Access, bool Guarded, typename Key, typename C>
inline Bounds pair_bounds(const Key* keys, unsigned n, C c0, C c1) {
    if (n == 0) return Bounds{0, 0};
    if constexpr (Guarded) {
        using FC = dtree::first_column<Key>;
        const Key first = Access::load(keys[0]);
        const C f0 = FC::extract(first);
        const C f1 = FC::extract_second(first);
        if (c0 < f0 || (c0 == f0 && c1 < f1)) return Bounds{0, 0};
        const Key last = Access::load(keys[n - 1]);
        const C l0 = FC::extract(last);
        const C l1 = FC::extract_second(last);
        if (c0 > l0 || (c0 == l0 && c1 > l1)) return Bounds{n, n};
        if (f0 == l0 && f1 == l1) return Bounds{0, n}; // probe == every key
    }
#if DTREE_SIMD_VECTOR
    if constexpr (pair_vectorizable<Key, C>) {
        if (have_avx2()) {
            DTREE_METRIC_INC(search_simd_probes);
            return pair_bounds_avx2_64(keys, n, to_ordered(c0), to_ordered(c1),
                                       order_mask<C>());
        }
    }
#endif
    DTREE_METRIC_INC(search_scalar_fallbacks);
    return pair_bounds_scalar<Access>(keys, n, c0, c1);
}

/// Fingerprint membership probe over a v2 leaf's byte array (DESIGN.md §15):
/// compares all n fingerprint bytes against `b` — one _mm256_cmpeq_epi8 per
/// 32 slots on the vector path — and hands each matching slot to `verify`
/// (which loads the slot's key through the caller's Access discipline and
/// compares it). Returns the first verified slot, or -1. The common Datalog
/// case — a fresh derivation whose fingerprint matches no slot — answers
/// with ZERO key loads (fp_skips counts those; fp_false_hits counts byte
/// matches the key comparison rejected).
///
/// The fingerprint array is padded to a whole vector (fp_padded_size), so
/// the final unaligned load never reads out of bounds; bytes at and beyond
/// n are masked out. Bytes within [0, n) left stale by a racing writer can
/// only cause a spurious verify (discarded by the caller's lease validation)
/// or a missed match (the caller restarts on validation failure) — the same
/// discard-on-conflict argument as every other racy read.
template <typename Access, typename Verify>
inline int fp_find(const std::uint8_t* fp, unsigned n, std::uint8_t b,
                   Verify&& verify) {
    DTREE_METRIC_INC(fp_probes);
    bool any = false;
#if DTREE_SIMD_VECTOR
    if (have_avx2()) {
        for (unsigned base = 0; base < n; base += 32) {
            std::uint32_t m = fp_eq_mask_avx2(fp + base, b);
            const unsigned rem = n - base;
            if (rem < 32) m &= 0xffffffffu >> (32 - rem);
            while (m != 0) {
                const unsigned slot =
                    base + static_cast<unsigned>(__builtin_ctz(m));
                any = true;
                if (verify(slot)) return static_cast<int>(slot);
                DTREE_METRIC_INC(fp_false_hits);
                m &= m - 1;
            }
        }
        if (!any) DTREE_METRIC_INC(fp_skips);
        return -1;
    }
#endif
    // Scalar fallback (TSan builds, non-AVX2 hosts, -DDATATREE_SIMD=OFF):
    // byte loads through the Access discipline, same candidate handling.
    for (unsigned i = 0; i < n; ++i) {
        if (Access::load(fp[i]) != b) continue;
        any = true;
        if (verify(i)) return static_cast<int>(i);
        DTREE_METRIC_INC(fp_false_hits);
    }
    if (!any) DTREE_METRIC_INC(fp_skips);
    return -1;
}

} // namespace simd

/// Vectorized in-node search over dense column views (DESIGN.md §10).
/// Scalar keys scan their key array directly (it IS the column); Tuple<2>
/// trees — the paper's key type — run the interleaved pair kernel on BOTH
/// node kinds, deinterleaving the AoS keys in registers for exact
/// lexicographic bounds (never touching the 3-way comparator, and storing
/// no mirror anywhere). Wider tuples scan the inner nodes' SoA first/
/// second-column caches to narrow descent to a tie range and consult the
/// comparator only inside it. Requires a key with
/// an arithmetic first column AND a comparator consistent with it
/// (comparator.h's comparator_respects_first_column); DefaultSearch checks
/// both before selecting it, and the btree static_asserts them for explicit
/// configuration. Seqlock-correct per the race_access.h shim notes: the racy
/// vector loads only ever run between start_read/validate or under a write
/// lock, and their results are discarded on validation failure.
struct SimdSearch {
    /// This policy reads the node's column caches; trees configured with it
    /// instantiate nodes that carry (and maintain) them.
    static constexpr bool uses_column = true;

    /// Can this policy be instantiated for (Key, Comp)? Surfaced so
    /// DefaultSearch and the btree's static_assert give a clear diagnostic
    /// instead of a template error novel.
    template <typename Key, typename Comp>
    static constexpr bool viable =
        dtree::first_column<Key>::available &&
        dtree::comparator_respects_first_column<Comp, Key>;

    /// Narrows [0, n) to the probe's position/tie range, choosing the kernel
    /// by key shape (and boundary-guarding by node kind):
    ///   * scalars / Tuple<1>: the key array IS the dense column — one scan;
    ///   * Tuple<2>: the interleaved AoS kernel on both node kinds — exact
    ///     lexicographic bounds straight off keys[], zero side storage;
    ///   * inner nodes of wider tuples: dense SoA first-column cache, then
    ///     the second-column cache over the surviving tie range;
    ///   * leaves of wider tuples: no narrowing (the caller's comparator
    ///     loop scans, linear-equivalent).
    /// For pair-covering keys (scalars, Tuple<1>, Tuple<2>) the returned
    /// bounds ARE the final answers.
    template <typename Access, typename NodeT, typename Key>
    static simd::Bounds narrow(const NodeT* node, unsigned n, const Key& k) {
        using FC = typename NodeT::FirstCol;
        using C = typename NodeT::col_type;
        if constexpr (NodeT::dense_keys) {
            // Scalars / Tuple<1>: the key array is (layout-compatible with)
            // the dense column. Boundary guards on for hot, tie-prone inner
            // nodes; off for cold leaves (see column_bounds).
            const C* col = reinterpret_cast<const C*>(node->keys);
            if (node->inner) {
                return simd::column_bounds<Access, C, true>(col, n,
                                                            FC::extract(k));
            }
            return simd::column_bounds<Access, C, false>(col, n,
                                                         FC::extract(k));
        } else if constexpr (NodeT::pair_keys) {
            // Tuple<2>: interleaved AoS kernel on both node kinds; lex
            // boundary guards for hot inner separators only.
            if (node->inner) {
                return simd::pair_bounds<Access, true>(
                    node->keys, n, FC::extract(k), FC::extract_second(k));
            }
            return simd::pair_bounds<Access, false>(
                node->keys, n, FC::extract(k), FC::extract_second(k));
        } else {
            if constexpr (NodeT::inner_columns) {
                if (node->inner) {
                    const auto* in = node->as_inner();
                    auto b = simd::column_bounds<Access>(in->column(), n,
                                                         FC::extract(k));
                    if constexpr (NodeT::inner_column2) {
                        if (b.lt < b.le) {
                            const auto b2 = simd::column_bounds<Access>(
                                in->column2() + b.lt, b.le - b.lt,
                                FC::extract_second(k));
                            b = simd::Bounds{b.lt + b2.lt, b.lt + b2.le};
                        }
                    }
                    return b;
                }
            }
            // Wider tuples at the leaf: no narrowing — the caller's
            // comparator loop scans (linear-equivalent).
            return simd::Bounds{0, n};
        }
    }

    template <typename Access, typename NodeT, typename Key, typename Comp>
    static unsigned lower_node(const NodeT* node, unsigned n, const Key& k,
                               const Comp& comp) {
        static_assert(NodeT::has_column,
                      "SimdSearch requires a key type with an arithmetic first "
                      "column (a scalar, or Tuple<N, arithmetic>); configure "
                      "LinearSearch or BinarySearch for this key type");
        using FC = typename NodeT::FirstCol;
        const auto b = narrow<Access>(node, n, k);
        if constexpr (FC::pair_covers) {
            return b.lt;
        } else {
            unsigned lo = b.lt;
            if (lo < b.le) {
                DTREE_METRIC_INC(search_scalar_fallbacks);
                while (lo < b.le && comp(Access::load(node->keys[lo]), k) < 0) {
                    ++lo;
                }
            }
            return lo;
        }
    }

    template <typename Access, typename NodeT, typename Key, typename Comp>
    static unsigned upper_node(const NodeT* node, unsigned n, const Key& k,
                               const Comp& comp) {
        static_assert(NodeT::has_column,
                      "SimdSearch requires a key type with an arithmetic first "
                      "column (a scalar, or Tuple<N, arithmetic>); configure "
                      "LinearSearch or BinarySearch for this key type");
        using FC = typename NodeT::FirstCol;
        const auto b = narrow<Access>(node, n, k);
        if constexpr (FC::pair_covers) {
            return b.le;
        } else {
            unsigned i = b.lt;
            if (i < b.le) {
                DTREE_METRIC_INC(search_scalar_fallbacks);
                while (i < b.le && comp(Access::load(node->keys[i]), k) <= 0) {
                    ++i;
                }
            }
            return i;
        }
    }
};

// ---------------------------------------------------------------------------
// Node-aware search dispatch
// ---------------------------------------------------------------------------

/// True iff `Search` can run over (Key, Comp). Policies without a `viable`
/// member (LinearSearch, BinarySearch, user policies) work for every key.
template <typename Search, typename Key, typename Comp>
constexpr bool search_policy_viable() {
    if constexpr (requires { Search::template viable<Key, Comp>; }) {
        return Search::template viable<Key, Comp>;
    } else {
        return true;
    }
}

/// True iff `Search` reads the node column caches, i.e. the tree should pay
/// for their storage and maintenance. Policies without a `uses_column`
/// member (user policies predating the caches) are assumed column-free.
template <typename Search>
constexpr bool search_wants_column() {
    if constexpr (requires { Search::uses_column; }) {
        return Search::uses_column;
    } else {
        return false;
    }
}

/// Dispatches an in-node lower_bound to the policy: node-aware policies
/// (SimdSearch — they need the column cache) get the node, classic policies
/// get the raw key array. All call sites in core/btree.h funnel through
/// these two, so a policy only has to implement one shape.
template <typename Search, typename Access, typename NodeT, typename Key,
          typename Comp>
inline unsigned node_lower(const NodeT* node, unsigned n, const Key& k,
                           const Comp& comp) {
    if constexpr (requires {
                      Search::template lower_node<Access>(node, n, k, comp);
                  }) {
        return Search::template lower_node<Access>(node, n, k, comp);
    } else {
        return Search::template lower<Access>(node->keys, n, k, comp);
    }
}

template <typename Search, typename Access, typename NodeT, typename Key,
          typename Comp>
inline unsigned node_upper(const NodeT* node, unsigned n, const Key& k,
                           const Comp& comp) {
    if constexpr (requires {
                      Search::template upper_node<Access>(node, n, k, comp);
                  }) {
        return Search::template upper_node<Access>(node, n, k, comp);
    } else {
        return Search::template upper<Access>(node->keys, n, k, comp);
    }
}

/// Sentinel for "no predicted slot" (core/hints.h hands these in).
inline constexpr std::uint32_t kNoSlotHint = 0xffffffffu;

/// Hinted lower_bound: operation hints remember the slot the previous
/// operation landed on; two boundary comparisons verify the guess — correct
/// iff keys[guess-1] < k <= keys[guess] with virtual sentinels at the ends —
/// and only a failed guess pays for the full in-node search. Sequential and
/// repeated probes (sorted merges, re-derived Datalog tuples) hit the guess
/// almost always.
template <typename Search, typename Access, typename NodeT, typename Key,
          typename Comp>
inline unsigned node_lower_hinted(const NodeT* node, unsigned n, const Key& k,
                                  const Comp& comp, std::uint32_t guess) {
    if (guess <= n) {
        const bool left_ok =
            guess == 0 || comp(Access::load(node->keys[guess - 1]), k) < 0;
        if (left_ok &&
            (guess == n || comp(Access::load(node->keys[guess]), k) >= 0)) {
            return guess;
        }
    }
    return node_lower<Search, Access>(node, n, k, comp);
}

/// Hinted upper_bound: correct iff keys[guess-1] <= k < keys[guess].
template <typename Search, typename Access, typename NodeT, typename Key,
          typename Comp>
inline unsigned node_upper_hinted(const NodeT* node, unsigned n, const Key& k,
                                  const Comp& comp, std::uint32_t guess) {
    if (guess <= n) {
        const bool left_ok =
            guess == 0 || comp(Access::load(node->keys[guess - 1]), k) <= 0;
        if (left_ok &&
            (guess == n || comp(Access::load(node->keys[guess]), k) > 0)) {
            return guess;
        }
    }
    return node_upper<Search, Access>(node, n, k, comp);
}

/// Descent prefetch of the *adjacent* child: when the probe's first column
/// equals the separator at `pos`, keys tied on the first column straddle
/// children[pos] and children[pos+1] (and a multiset descent or tie-heavy
/// set workload frequently visits both), so pull the sibling's header in
/// too. One scalar column compare decides; no-op for keys without a column
/// cache.
template <typename Access, typename NodeT, typename Key>
inline void prefetch_tie_sibling(const NodeT* node, unsigned pos, unsigned n,
                                 const Key& k) {
    if constexpr (NodeT::has_column) {
        using FC = typename NodeT::FirstCol;
        if (pos >= n) return;
        bool tie;
        if constexpr (NodeT::dense_keys) {
            using C = typename NodeT::col_type;
            tie = Access::load(
                      reinterpret_cast<const C*>(node->keys)[pos]) ==
                  FC::extract(k);
        } else if constexpr (NodeT::pair_keys) {
            tie = FC::extract(Access::load(node->keys[pos])) == FC::extract(k);
        } else {
            tie = Access::load(node->as_inner()->column()[pos]) ==
                  FC::extract(k);
        }
        if (tie) prefetch_node(node->as_inner()->children[pos + 1].load());
    }
}

/// Should DefaultSearch hand (Key, BlockSize) to SimdSearch? Thresholds are
/// measured, not guessed (bench/ablation_search, best-of-5, 1M random
/// inserts; EXPERIMENTS.md search-ablation note):
///   * dense scalar columns (u64 & friends): the vectorized column scan wins
///     once the node spans >= 4 cache lines of keys — 1.27x over the old
///     binary default at the default 64-key u64 nodes — while on 2-line
///     nodes the early-exit linear scan still wins (the out-of-line,
///     runtime-dispatched AVX2 kernel can't inline into generic-ISA callers,
///     and that call overhead needs a few cache lines of scanning to
///     amortise);
///   * pair keys (Tuple<2>): the interleaved register kernel reads the same
///     AoS lines the 3-way early-exit scan reads, so it needs >= 2 KiB of
///     keys per node before the lane parallelism clears the dispatch
///     overhead; at the default 32-key nodes linear keeps a few percent.
///     SimdSearch remains available by explicit configuration at any size.
template <typename Key, unsigned BlockSize>
constexpr bool default_prefers_simd() {
    constexpr std::size_t payload = std::size_t{BlockSize} * sizeof(Key);
    if constexpr (dense_column_key<Key>()) {
        return payload >= 256;
    } else {
        return payload >= 2048;
    }
}

/// Default in-node search policy, chosen per (key, comparator, block size):
///   * SimdSearch where the measured thresholds above say the vector kernel
///     wins (and the comparator is first-column-consistent, so it is exact);
///   * otherwise the classic pair, now keyed on the node's actual key
///     payload rather than the key type's *default* block size (the old
///     heuristic's bug): the branch-predictable early-exit linear scan up to
///     ~768 B of keys per node, binary search beyond.
template <typename Key, typename Compare = ThreeWayComparator<Key>,
          unsigned BlockSize = default_block_size<Key>()>
using DefaultSearch = std::conditional_t<
    SimdSearch::viable<Key, Compare> && default_prefers_simd<Key, BlockSize>(),
    SimdSearch,
    std::conditional_t<(std::size_t{BlockSize} * sizeof(Key) <= 768),
                       LinearSearch, BinarySearch>>;

// ---------------------------------------------------------------------------
// Iterator
// ---------------------------------------------------------------------------

/// Rank→slot table for iterating a v2 leaf whose append zone is non-empty:
/// idx[rank] is the physical slot of the rank-th key in merged order (sorted
/// prefix and tail interleaved; ties keep prefix-before-tail, tail in slot
/// order — exactly the order point inserts into a sorted leaf would have
/// produced). Built lazily on first dereference so iterators created merely
/// for comparison (contains() == end()) never read the leaf's keys, and
/// cached per leaf (built_for). Empty when the policy is off.
template <unsigned BlockSize, bool Present>
struct IterOrder {
    const void* built_for = nullptr;
    bool active = false;
    std::uint16_t idx[BlockSize];
};
template <unsigned BlockSize>
struct IterOrder<BlockSize, false> {};

/// Placeholder comparator type for non-fingerprint iterators (the merged
/// view is the only thing an iterator ever compares keys for).
struct IterNoComp {};

/// Forward in-order iterator over a (phase-concurrently read) B-tree.
/// Holds (node, index); incrementing performs the classic in-order walk:
/// after consuming an inner key, descend to the leftmost leaf of the right
/// child; after the last key of a leaf, climb until a pending separator key
/// is found. Iteration is only defined while no writer is active (§2's
/// two-phase guarantee).
///
/// Leaf layout v2 (WithFingerprints): the index is a RANK in the leaf's
/// merged (sorted-prefix + append-zone) view; dereferencing maps it to the
/// physical slot through a lazily built order table. Positions and counts
/// are unchanged, so the walk itself is identical.
template <typename Key, unsigned BlockSize, typename Access,
          bool WithColumn = true, bool WithSnapshots = false,
          bool WithFingerprints = false, typename Compare = void>
class Iterator {
public:
    using NodeT = Node<Key, BlockSize, Access, WithColumn, WithSnapshots,
                       WithFingerprints>;
    using value_type = Key;
    using reference = const Key&;
    using pointer = const Key*;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;
    using CompT = std::conditional_t<WithFingerprints, Compare, IterNoComp>;

    Iterator() = default;
    Iterator(const NodeT* node, unsigned pos, CompT comp = CompT{})
        : node_(node), pos_(pos), comp_(comp) {}

    reference operator*() const { return node_->keys[slot(pos_)]; }
    pointer operator->() const { return &node_->keys[slot(pos_)]; }

    Iterator& operator++() {
        if (node_->inner) {
            // Consumed separator keys[pos_]; next is the smallest key of the
            // right child's subtree.
            const NodeT* n = node_->as_inner()->children[pos_ + 1].load();
            while (n->inner) n = n->as_inner()->children[0].load();
            node_ = n;
            pos_ = 0;
        } else {
            ++pos_;
            climb_exhausted();
        }
        return *this;
    }

    Iterator operator++(int) {
        Iterator tmp = *this;
        ++*this;
        return tmp;
    }

    friend bool operator==(const Iterator& a, const Iterator& b) {
        return a.node_ == b.node_ && a.pos_ == b.pos_;
    }

    const NodeT* node() const { return node_; }
    unsigned pos() const { return pos_; }

private:
    /// While positioned one past the last key of a node, climb to the parent
    /// separator; reaching one past the root means end().
    void climb_exhausted() {
        while (node_ && pos_ == node_->num_elements.load()) {
            const NodeT* parent = node_->parent.load();
            pos_ = node_->position.load();
            node_ = parent;
        }
        if (!node_) {
            pos_ = 0; // normalise to end()
            return;
        }
        if (node_->inner) {
            // The walk resumes in children[pos_ + 1] right after this
            // separator is consumed: start pulling that subtree root in now,
            // overlapping its miss with the separator's consumption.
            prefetch_node(node_->as_inner()->children[pos_ + 1].load());
        }
    }

    /// Map a rank to a physical slot. Identity for inner nodes (always
    /// sorted), for v1 leaves, and for v2 leaves with an empty append zone.
    unsigned slot(unsigned rank) const {
        if constexpr (WithFingerprints) {
            if (!node_->inner) {
                if (order_.built_for != node_) build_order();
                if (order_.active) return order_.idx[rank];
            }
        }
        return rank;
    }

    /// Build the merged rank→slot table for the current leaf. Called only
    /// from dereference, i.e. during a read phase with no concurrent writer
    /// (the iterator contract) — plain reads of keys/sorted are fine here.
    void build_order() const requires WithFingerprints {
        const unsigned n = node_->num_elements.load();
        const unsigned s = node_->fp_sorted();
        order_.built_for = node_;
        order_.active = (s < n);
        if (!order_.active) return;
        for (unsigned i = 0; i < n; ++i)
            order_.idx[i] = static_cast<std::uint16_t>(i);
        // Stable insertion sort of the tail into the prefix: strict `> 0`
        // keeps prefix-before-tail at ties and tail entries in slot order —
        // the order point inserts into a sorted leaf would have produced.
        for (unsigned i = s; i < n; ++i) {
            const std::uint16_t v = order_.idx[i];
            unsigned j = i;
            while (j > 0 && comp_(node_->keys[order_.idx[j - 1]],
                                   node_->keys[v]) > 0) {
                order_.idx[j] = order_.idx[j - 1];
                --j;
            }
            order_.idx[j] = v;
        }
    }

    const NodeT* node_ = nullptr;
    unsigned pos_ = 0;
    mutable IterOrder<BlockSize, WithFingerprints> order_{};
    [[no_unique_address]] CompT comp_{};
};

} // namespace dtree::detail

#pragma once

// Node machinery, in-node search policies, and the in-order iterator of the
// specialized B-tree (§3). This is a *classic* B-tree — keys live in inner
// nodes too — matching the structure the paper describes: a split keeps half
// of the keys in the existing node, moves half to a new sibling, and promotes
// the median to the parent.
//
// Concurrency-relevant layout rules (§3.1):
//   * every node carries its own OptimisticReadWriteLock;
//   * a node's keys, element count and child pointers are protected by the
//     node's own lock;
//   * a node's parent pointer and position-in-parent are protected by the
//     *parent's* lock (or the tree's root lock for the root node);
//   * nodes are never freed or moved while the tree lives, so stale pointers
//     read under a failed lease are always safe to *hold* (never to use).

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "core/optimistic_lock.h"
#include "core/race_access.h"

namespace dtree::detail {

/// Default number of keys per node: targets ~512 bytes of key payload, the
/// sweet spot found by the ablation_node_size bench (several cache lines per
/// node amortise the per-node traversal cost; cf. Google's btree defaults).
template <typename Key>
constexpr unsigned default_block_size() {
    constexpr std::size_t target = 512;
    constexpr std::size_t n = target / sizeof(Key);
    return n < 3 ? 3u : static_cast<unsigned>(n);
}

// ---------------------------------------------------------------------------
// Nodes
// ---------------------------------------------------------------------------

template <typename Key, unsigned BlockSize, typename Access>
struct InnerNode;

/// Common node header + key storage. Leaf nodes are exactly this; inner
/// nodes extend it with a child-pointer array.
template <typename Key, unsigned BlockSize, typename Access>
struct Node {
    static constexpr bool concurrent = Access::concurrent;
    using Inner = InnerNode<Key, BlockSize, Access>;

    /// Per-node optimistic read-write lock (unused by the sequential
    /// instantiation; one idle word keeps the layouts identical).
    OptimisticReadWriteLock lock;

    /// Parent node, or nullptr for the root. Protected by the parent's lock.
    relaxed_value<Inner*, concurrent> parent{nullptr};

    /// Index of this node within parent->children. Protected by the parent's
    /// lock.
    relaxed_value<std::uint32_t, concurrent> position{0};

    /// Number of valid keys in keys[]. Protected by this node's lock.
    relaxed_value<std::uint32_t, concurrent> num_elements{0};

    /// Immutable after construction; distinguishes Inner from leaf nodes.
    const bool inner;

    /// Key storage; slots [0, num_elements) are valid. Protected by this
    /// node's lock; racy readers copy elements via Access and validate.
    Key keys[BlockSize];

    explicit Node(bool is_inner) : inner(is_inner) {}

    std::uint32_t size() const { return num_elements.load(); }
    bool full() const { return size() == BlockSize; }

    Inner* as_inner() {
        assert(inner);
        return static_cast<Inner*>(this);
    }
    const Inner* as_inner() const {
        assert(inner);
        return static_cast<const Inner*>(this);
    }
};

template <typename Key, unsigned BlockSize, typename Access>
struct InnerNode : Node<Key, BlockSize, Access> {
    using Base = Node<Key, BlockSize, Access>;
    static constexpr bool concurrent = Access::concurrent;

    /// children[i] precedes keys[i]; children[num_elements] is the last.
    /// Protected by this node's lock.
    relaxed_value<Base*, concurrent> children[BlockSize + 1];

    InnerNode() : Base(/*is_inner=*/true) {
        for (auto& c : children) c.store(nullptr);
    }
};

/// Frees a node and, recursively, everything below it. Only safe without
/// concurrent users (destructor / clear()).
template <typename Key, unsigned BlockSize, typename Access>
void free_subtree(Node<Key, BlockSize, Access>* n) {
    if (!n) return;
    if (n->inner) {
        auto* in = n->as_inner();
        const std::uint32_t cnt = in->num_elements.load();
        for (std::uint32_t i = 0; i <= cnt; ++i) free_subtree(in->children[i].load());
        delete in;
    } else {
        delete n;
    }
}

// ---------------------------------------------------------------------------
// In-node search policies (ablation: bench/ablation_search)
// ---------------------------------------------------------------------------

/// Linear scan with the 3-way comparator. For small nodes and cheap keys the
/// branch predictor makes this faster than binary search.
struct LinearSearch {
    /// First index in [0, n) whose key is >= k, else n.
    template <typename Access, typename Key, typename Comp>
    static unsigned lower(const Key* keys, unsigned n, const Key& k, const Comp& comp) {
        unsigned i = 0;
        while (i < n && comp(Access::load(keys[i]), k) < 0) ++i;
        return i;
    }

    /// First index in [0, n) whose key is > k, else n.
    template <typename Access, typename Key, typename Comp>
    static unsigned upper(const Key* keys, unsigned n, const Key& k, const Comp& comp) {
        unsigned i = 0;
        while (i < n && comp(Access::load(keys[i]), k) <= 0) ++i;
        return i;
    }
};

/// Binary search; O(log B) comparisons per node, the right choice for wide
/// nodes and expensive comparators.
struct BinarySearch {
    template <typename Access, typename Key, typename Comp>
    static unsigned lower(const Key* keys, unsigned n, const Key& k, const Comp& comp) {
        unsigned lo = 0, hi = n;
        while (lo < hi) {
            const unsigned mid = lo + (hi - lo) / 2;
            if (comp(Access::load(keys[mid]), k) < 0) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        return lo;
    }

    template <typename Access, typename Key, typename Comp>
    static unsigned upper(const Key* keys, unsigned n, const Key& k, const Comp& comp) {
        unsigned lo = 0, hi = n;
        while (lo < hi) {
            const unsigned mid = lo + (hi - lo) / 2;
            if (comp(Access::load(keys[mid]), k) <= 0) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        return lo;
    }
};

/// Default in-node search policy, chosen per key type: bench/ablation_search
/// shows the branch-predictable linear scan winning up to a few dozen keys
/// per node (the regime of tuple keys), while the wide nodes small scalar
/// keys get (e.g. 128 x uint32) need binary search.
template <typename Key>
using DefaultSearch =
    std::conditional_t<(default_block_size<Key>() <= 48), LinearSearch, BinarySearch>;

// ---------------------------------------------------------------------------
// Iterator
// ---------------------------------------------------------------------------

/// Forward in-order iterator over a (phase-concurrently read) B-tree.
/// Holds (node, index); incrementing performs the classic in-order walk:
/// after consuming an inner key, descend to the leftmost leaf of the right
/// child; after the last key of a leaf, climb until a pending separator key
/// is found. Iteration is only defined while no writer is active (§2's
/// two-phase guarantee).
template <typename Key, unsigned BlockSize, typename Access>
class Iterator {
public:
    using NodeT = Node<Key, BlockSize, Access>;
    using value_type = Key;
    using reference = const Key&;
    using pointer = const Key*;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    Iterator() = default;
    Iterator(const NodeT* node, unsigned pos) : node_(node), pos_(pos) {}

    reference operator*() const { return node_->keys[pos_]; }
    pointer operator->() const { return &node_->keys[pos_]; }

    Iterator& operator++() {
        if (node_->inner) {
            // Consumed separator keys[pos_]; next is the smallest key of the
            // right child's subtree.
            const NodeT* n = node_->as_inner()->children[pos_ + 1].load();
            while (n->inner) n = n->as_inner()->children[0].load();
            node_ = n;
            pos_ = 0;
        } else {
            ++pos_;
            climb_exhausted();
        }
        return *this;
    }

    Iterator operator++(int) {
        Iterator tmp = *this;
        ++*this;
        return tmp;
    }

    friend bool operator==(const Iterator& a, const Iterator& b) {
        return a.node_ == b.node_ && a.pos_ == b.pos_;
    }

    const NodeT* node() const { return node_; }
    unsigned pos() const { return pos_; }

private:
    /// While positioned one past the last key of a node, climb to the parent
    /// separator; reaching one past the root means end().
    void climb_exhausted() {
        while (node_ && pos_ == node_->num_elements.load()) {
            const NodeT* parent = node_->parent.load();
            pos_ = node_->position.load();
            node_ = parent;
        }
        if (!node_) pos_ = 0; // normalise to end()
    }

    const NodeT* node_ = nullptr;
    unsigned pos_ = 0;
};

} // namespace dtree::detail

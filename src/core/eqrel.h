#pragma once

// eqrel — an equivalence-relation data structure, the companion of the
// specialized B-tree in Soufflé's data-structure family (cf. "Fast Parallel
// Equivalence Relations in a Datalog Compiler", Nappa et al.). A Datalog
// relation declared as an equivalence (reflexive + symmetric + transitive)
// would need O(c²) B-tree tuples per c-element class; this structure stores
// the same information as a union-find forest in O(n) and answers
// membership in near-constant time.
//
// Concurrency model (consistent with the rest of this repository):
//   * insert(a, b) — thread-safe lock-free union (CAS on parent pointers,
//     path halving); element interning takes a short spinlock.
//   * contains / size / iteration — phase-concurrent: may race with inserts
//     only in the weak sense that a concurrently-merged pair may be reported
//     either way; classes never split, so positive answers are stable.

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/tuple.h"
#include "util/spinlock.h"

namespace dtree {

class eqrel {
    using Dense = std::uint32_t;

public:
    using value_type = Tuple<2>;

    eqrel() = default;
    eqrel(const eqrel&) = delete;
    eqrel& operator=(const eqrel&) = delete;
    ~eqrel() { release_blocks(); }

    /// Asserts a ~ b. Returns true iff this merged two previously distinct
    /// classes (i.e. the relation grew). Thread-safe.
    bool insert(RamDomain a, RamDomain b) {
        const Dense da = intern(a);
        const Dense db = intern(b);
        return union_classes(da, db);
    }

    bool insert(const Tuple<2>& t) { return insert(t[0], t[1]); }

    /// Is a ~ b? Unknown elements are only related to themselves.
    bool contains(RamDomain a, RamDomain b) const {
        if (a == b) return true;
        const Dense da = lookup(a);
        const Dense db = lookup(b);
        if (da == kMissing || db == kMissing) return false;
        return find(da) == find(db);
    }

    bool contains(const Tuple<2>& t) const { return contains(t[0], t[1]); }

    /// Number of interned elements.
    std::size_t element_count() const {
        std::lock_guard guard(map_lock_);
        return values_.size();
    }

    /// Number of (a, b) pairs in the represented relation — the size the
    /// equivalent B-tree relation would have: sum over classes of |c|².
    /// Phase-concurrent; O(n).
    std::size_t size() const {
        std::size_t total = 0;
        for (const auto& cls : classes()) total += cls.size() * cls.size();
        return total;
    }

    bool empty() const { return element_count() == 0; }

    /// Visits every pair (a, b) with a ~ b, including the reflexive ones, in
    /// class order. Phase-concurrent; materialises one class at a time.
    template <typename Fn>
    void for_each(Fn&& fn) const {
        for (const auto& cls : classes()) {
            for (RamDomain a : cls) {
                for (RamDomain b : cls) fn(Tuple<2>{a, b});
            }
        }
    }

    /// The canonical representative of a's class (the element interned
    /// earliest wins). Unknown elements represent themselves.
    RamDomain representative(RamDomain a) const {
        const Dense da = lookup(a);
        if (da == kMissing) return a;
        std::lock_guard guard(map_lock_);
        return values_[find(da)];
    }

    /// NOT thread-safe (like the B-tree's clear()).
    void clear() {
        std::lock_guard guard(map_lock_);
        dense_.clear();
        values_.clear();
        release_blocks();
    }

    /// All equivalence classes as element lists (phase-concurrent).
    std::vector<std::vector<RamDomain>> classes() const {
        std::lock_guard guard(map_lock_);
        const std::size_t n = values_.size();
        std::unordered_map<Dense, std::size_t> root_index;
        std::vector<std::vector<RamDomain>> out;
        for (Dense i = 0; i < n; ++i) {
            const Dense r = find(i);
            auto [it, fresh] = root_index.emplace(r, out.size());
            if (fresh) out.emplace_back();
            out[it->second].push_back(values_[i]);
        }
        return out;
    }

private:
    static constexpr Dense kMissing = ~Dense{0};

    Dense intern(RamDomain v) {
        std::lock_guard guard(map_lock_);
        auto it = dense_.find(v);
        if (it != dense_.end()) return it->second;
        const Dense id = static_cast<Dense>(values_.size());
        if (id >= kMaxBlocks * kBlockSize) {
            throw std::length_error("eqrel: element capacity exceeded");
        }
        dense_.emplace(v, id);
        values_.push_back(v);
        // Parent slot: blocks are allocated once and never move, so lock-free
        // readers can chase parent pointers while other elements intern.
        const std::size_t block = id >> kBlockBits;
        if (!dir_[block].load(std::memory_order_relaxed)) {
            auto* fresh = new std::atomic<Dense>[kBlockSize];
            dir_[block].store(fresh, std::memory_order_release);
        }
        slot(id).store(id, std::memory_order_release);
        return id;
    }

    Dense lookup(RamDomain v) const {
        std::lock_guard guard(map_lock_);
        auto it = dense_.find(v);
        return it == dense_.end() ? kMissing : it->second;
    }

    /// Lock-free find with path halving; safe to run concurrently with
    /// unions (parents only ever move towards smaller ids).
    Dense find(Dense x) const {
        for (;;) {
            Dense p = slot(x).load(std::memory_order_acquire);
            if (p == x) return x;
            const Dense gp = slot(p).load(std::memory_order_acquire);
            if (p != gp) {
                // Path halving: harmless if it fails.
                Dense expected = p;
                slot(x).compare_exchange_weak(expected, gp, std::memory_order_release,
                                              std::memory_order_relaxed);
            }
            x = p;
        }
    }

    /// Lock-free union: the smaller dense id (= earlier-interned element)
    /// becomes the root, making representatives deterministic under
    /// sequential use.
    bool union_classes(Dense a, Dense b) {
        for (;;) {
            Dense ra = find(a);
            Dense rb = find(b);
            if (ra == rb) return false;
            if (ra > rb) std::swap(ra, rb);
            Dense expected = rb;
            if (slot(rb).compare_exchange_strong(expected, ra,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_relaxed)) {
                return true;
            }
            // rb gained a parent concurrently; retry with fresh roots.
        }
    }

    // Two-level parent storage: a fixed directory of once-allocated blocks,
    // so growth (under map_lock_) never moves or invalidates the slots that
    // lock-free find/union traverse concurrently.
    static constexpr unsigned kBlockBits = 12;
    static constexpr std::size_t kBlockSize = std::size_t{1} << kBlockBits;
    static constexpr std::size_t kMaxBlocks = std::size_t{1} << 14; // 2^26 elements

    std::atomic<Dense>& slot(Dense i) const {
        return dir_[i >> kBlockBits].load(std::memory_order_acquire)[i & (kBlockSize - 1)];
    }

    void release_blocks() {
        for (std::size_t b = 0; b < kMaxBlocks; ++b) {
            delete[] dir_[b].exchange(nullptr, std::memory_order_relaxed);
        }
    }

    mutable util::Spinlock map_lock_;
    std::unordered_map<RamDomain, Dense> dense_;
    std::vector<RamDomain> values_;
    mutable std::unique_ptr<std::atomic<std::atomic<Dense>*>[]> dir_ =
        std::make_unique<std::atomic<std::atomic<Dense>*>[]>(kMaxBlocks);
};

} // namespace dtree

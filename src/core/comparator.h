#pragma once

// Three-way comparators (paper §3, implementation note 2).
//
// In-node search compares a probe key against many stored keys; a classic
// `operator<` forces two comparisons per element to distinguish <, ==, >.
// A custom 3-way comparator answers with one pass over the tuple, which is
// one of the tuning optimisations the paper credits for the tree's
// sequential performance. The ablation_search bench quantifies it.

#include <compare>
#include <cstddef>
#include <functional>
#include <type_traits>

#include "core/tuple.h"

namespace dtree {

/// Default 3-way comparator: -1 / 0 / +1 like memcmp. Works for any type
/// with operator< (generic fallback) and is specialised for Tuple to do a
/// single element-wise pass.
template <typename T>
struct ThreeWayComparator {
    int operator()(const T& a, const T& b) const {
        if (a < b) return -1;
        if (b < a) return 1;
        return 0;
    }

    bool less(const T& a, const T& b) const { return (*this)(a, b) < 0; }
    bool equal(const T& a, const T& b) const { return (*this)(a, b) == 0; }
};

template <std::size_t Arity, typename T>
struct ThreeWayComparator<Tuple<Arity, T>> {
    int operator()(const Tuple<Arity, T>& a, const Tuple<Arity, T>& b) const {
        for (std::size_t i = 0; i < Arity; ++i) {
            if (a[i] < b[i]) return -1;
            if (a[i] > b[i]) return 1;
        }
        return 0;
    }

    bool less(const Tuple<Arity, T>& a, const Tuple<Arity, T>& b) const {
        return (*this)(a, b) < 0;
    }
    bool equal(const Tuple<Arity, T>& a, const Tuple<Arity, T>& b) const {
        return (*this)(a, b) == 0;
    }
};

/// True iff `Comp` orders keys consistently with ascending order of their
/// first column (first_column<Key>, core/tuple.h): whenever
/// extract(a) < extract(b), comp(a, b) < 0, and keys comparing equal have
/// equal first columns. SimdSearch's column-cache prefilter is only sound
/// under a comparator with this property, so DefaultSearch consults it and
/// the btree static_asserts it for explicitly-configured SimdSearch. The
/// default lexicographic ThreeWayComparator qualifies; custom orderings
/// (LessToThreeWay, reversed/permuted comparators) must opt in by
/// specialising this variable template — or keep the scalar policies.
template <typename Comp, typename Key>
inline constexpr bool comparator_respects_first_column = false;

template <typename Key>
inline constexpr bool comparator_respects_first_column<ThreeWayComparator<Key>, Key> =
    true;

/// Adapts an STL-style less<T> into the 3-way interface, for users who bring
/// their own ordering.
template <typename T, typename Less>
struct LessToThreeWay {
    Less less_fn;

    int operator()(const T& a, const T& b) const {
        if (less_fn(a, b)) return -1;
        if (less_fn(b, a)) return 1;
        return 0;
    }

    bool less(const T& a, const T& b) const { return less_fn(a, b); }
    bool equal(const T& a, const T& b) const { return (*this)(a, b) == 0; }
};

} // namespace dtree

#pragma once

// The wire-protocol server (DESIGN.md §13): sessions, the single-writer
// group-commit queue, backpressure, and drain-on-shutdown.
//
// Thread model
// ------------
//   * acceptor thread: polls the listener + reaps finished sessions;
//   * per session, a READER thread (decode frames, serve reads, stage
//     writes) and a SENDER thread (drain the session's bounded output
//     queue into the socket);
//   * ONE writer thread owning all engine mutation: sessions enqueue
//     CommitRequests; the writer drains every pending request, stages each
//     via ingest(), and runs ONE refixpoint() for the whole group (group
//     commit — the PR-7 batch semantics, now shared across connections).
//
// Reads never wait for the writer: QUERY/RANGE/COUNT pin
// `Relation::snapshot()` on the reader thread and resolve against that
// epoch boundary WHILE a refixpoint runs (the PR-6 guarantee, now
// per-connection). This is why Server static_asserts snapshot_capable.
//
// Robustness envelope
// -------------------
//   * read timeout: a session idle past read_timeout_ms gets ERROR Timeout
//     and is closed; * write timeout/backpressure: each session's output
//     queue is bounded by bytes — when a slow client keeps it full past
//     write_timeout_ms the session is SHED (counted, closed) instead of
//     wedging a reader thread or growing the heap;
//   * max_frame: oversize frames are skipped in O(1) memory and answered
//     with ERROR FrameTooLarge (the session survives); max_batch bounds
//     staged tuples per session (ERROR BatchLimit);
//   * malformed payloads draw ERROR BadFrame; only an unrecoverable framing
//     break (zero-length header) or protocol-order violations (no HELLO,
//     version mismatch) close the connection;
//   * shutdown (request_stop(), or SIGINT/SIGTERM via
//     install_signal_handlers): stop accepting, fail NEW commits with
//     ERROR ShuttingDown, finish every in-flight commit, flush output
//     queues, join everything. wait() returns only when the engine is
//     quiescent and all sockets are closed.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "datalog/service.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "util/histogram.h"
#include "util/json.h"
#include "util/metrics.h"

namespace dtree::net {

struct ServerConfig {
    std::uint16_t port = 0;        ///< 0 = ephemeral (read back via port())
    unsigned jobs = 1;             ///< refixpoint threads per group commit
    int read_timeout_ms = 30000;   ///< idle budget between client frames
    int write_timeout_ms = 5000;   ///< budget to make progress to a client
    int poll_slice_ms = 50;        ///< granularity of stop/deadline checks
    std::size_t max_frame = kDefaultMaxFrame;
    std::size_t max_batch = kDefaultMaxBatch;
    std::size_t max_output_bytes = 4u << 20; ///< per-session output queue bound
};

/// Always-on server counters (the net_* metrics mirror these when
/// DATATREE_METRICS is compiled in; tests and STATS read these directly so
/// observability does not depend on a build flag).
struct ServerCounters {
    std::atomic<std::uint64_t> connections{0};
    std::atomic<std::uint64_t> frames_in{0};
    std::atomic<std::uint64_t> frames_out{0};
    std::atomic<std::uint64_t> bytes_in{0};
    std::atomic<std::uint64_t> bytes_out{0};
    std::atomic<std::uint64_t> timeouts{0};
    std::atomic<std::uint64_t> sessions_shed{0};
    std::atomic<std::uint64_t> commits_queued{0};
    std::atomic<std::uint64_t> group_commits{0};
    std::atomic<std::uint64_t> errors_sent{0};
};

/// Stop flag + self-pipe: request_stop() is async-signal-safe (one relaxed
/// store + one write()), so the SIGINT/SIGTERM handler can call it directly.
/// Threads block on the pipe fd in poll() alongside their sockets.
class StopController {
public:
    StopController() {
        if (::pipe(fds_) != 0) {
            fds_[0] = fds_[1] = -1;
        }
    }
    ~StopController() {
        if (fds_[0] >= 0) ::close(fds_[0]);
        if (fds_[1] >= 0) ::close(fds_[1]);
    }
    StopController(const StopController&) = delete;
    StopController& operator=(const StopController&) = delete;

    void request_stop() noexcept {
        stopping_.store(true, std::memory_order_release);
        if (fds_[1] >= 0) {
            const char b = 's';
            // A full pipe already wakes every poller; the byte is best-effort.
            [[maybe_unused]] ssize_t rc = ::write(fds_[1], &b, 1);
        }
    }

    bool stopping() const noexcept {
        return stopping_.load(std::memory_order_acquire);
    }
    int poll_fd() const noexcept { return fds_[0]; }

private:
    std::atomic<bool> stopping_{false};
    int fds_[2] = {-1, -1};
};

namespace detail {
inline std::atomic<StopController*> g_signal_stop{nullptr};
inline void signal_stop_handler(int) {
    if (StopController* s = g_signal_stop.load(std::memory_order_acquire)) {
        s->request_stop();
    }
}
} // namespace detail

/// Routes SIGINT/SIGTERM to `stop.request_stop()` (drain-and-exit). The
/// handler body is async-signal-safe. Pass nullptr to detach.
inline void install_signal_handlers(StopController* stop) {
    detail::g_signal_stop.store(stop, std::memory_order_release);
    if (!stop) return;
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = detail::signal_stop_handler;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
}

template <typename EngineT>
class Server {
    using Service = datalog::EngineService<EngineT>;
    static_assert(Service::snapshots,
                  "the wire-protocol server requires snapshot-capable storage: "
                  "reads must pin epochs concurrently with refixpoints");

public:
    Server(EngineT& engine, ServerConfig cfg)
        : cfg_(cfg), service_(engine) {}

    ~Server() {
        request_stop();
        wait();
    }

    /// Binds, then launches the acceptor and writer threads. Throws on bind
    /// failure (port in use).
    void start() {
        std::string err;
        if (!listener_.bind_loopback(cfg_.port, err)) {
            throw std::runtime_error("server: " + err);
        }
        acceptor_ = std::thread([this] { accept_loop(); });
        writer_ = std::thread([this] { writer_loop(); });
    }

    std::uint16_t port() const { return listener_.port(); }
    StopController& stop_controller() { return stop_; }
    const ServerCounters& counters() const { return counters_; }

    void request_stop() { stop_.request_stop(); }

    /// Blocks until fully drained: acceptor joined, every queued commit
    /// applied (the writer drains before exiting), all sessions joined and
    /// their output flushed. Idempotent.
    void wait() {
        if (acceptor_.joinable()) acceptor_.join();
        listener_.close();
        // Wake the writer: it drains whatever is queued, then exits.
        {
            std::lock_guard<std::mutex> lk(queue_mu_);
        }
        queue_cv_.notify_all();
        if (writer_.joinable()) writer_.join();
        reap_sessions(/*all=*/true);
    }

    /// {"server": counters, "commit_latency_us": histogram,
    ///  "metrics": registry snapshot} — the STATS frame payload, also
    /// printed by soufflette at shutdown.
    std::string stats_json() {
        std::ostringstream os;
        json::Writer w(os, /*pretty=*/false);
        w.begin_object();
        w.key("server");
        w.begin_object();
        w.kv("connections", counters_.connections.load());
        w.kv("frames_in", counters_.frames_in.load());
        w.kv("frames_out", counters_.frames_out.load());
        w.kv("bytes_in", counters_.bytes_in.load());
        w.kv("bytes_out", counters_.bytes_out.load());
        w.kv("timeouts", counters_.timeouts.load());
        w.kv("sessions_shed", counters_.sessions_shed.load());
        w.kv("commits_queued", counters_.commits_queued.load());
        w.kv("group_commits", counters_.group_commits.load());
        w.kv("errors_sent", counters_.errors_sent.load());
        w.end_object();
        w.key("commit_latency_us");
        {
            std::lock_guard<std::mutex> lk(hist_mu_);
            commit_hist_.write_json(w);
        }
        w.key("metrics");
        metrics::snapshot().write_json(w);
        w.end_object();
        return os.str();
    }

private:
    // -- writer queue --------------------------------------------------------

    struct CommitRequest {
        typename Service::Batch batch;
        std::mutex mu;
        std::condition_variable cv;
        bool done = false;
        bool ok = false;
        std::string error;
        ErrCode code = ErrCode::Internal;
        std::uint64_t fresh = 0;
        std::uint64_t iterations = 0;

        void complete_ok(std::uint64_t f, std::uint64_t it) {
            std::lock_guard<std::mutex> lk(mu);
            ok = true;
            fresh = f;
            iterations = it;
            done = true;
            cv.notify_all();
        }
        void complete_err(ErrCode c, std::string msg) {
            std::lock_guard<std::mutex> lk(mu);
            ok = false;
            code = c;
            error = std::move(msg);
            done = true;
            cv.notify_all();
        }
        void await() {
            std::unique_lock<std::mutex> lk(mu);
            cv.wait(lk, [this] { return done; });
        }
    };

    /// Enqueues a commit; returns false when the writer has already drained
    /// and exited (shutdown raced the request).
    bool enqueue_commit(std::shared_ptr<CommitRequest> req) {
        {
            std::lock_guard<std::mutex> lk(queue_mu_);
            if (writer_done_) return false;
            queue_.push_back(std::move(req));
        }
        counters_.commits_queued.fetch_add(1, std::memory_order_relaxed);
        DTREE_METRIC_INC(net_commits_queued);
        queue_cv_.notify_one();
        return true;
    }

    void writer_loop() {
        for (;;) {
            std::vector<std::shared_ptr<CommitRequest>> group;
            {
                std::unique_lock<std::mutex> lk(queue_mu_);
                queue_cv_.wait(lk, [this] {
                    return !queue_.empty() || stop_.stopping();
                });
                if (queue_.empty() && stop_.stopping()) {
                    // Nothing pending and no new enqueues can land after
                    // writer_done_: safe to exit — the drain guarantee holds.
                    writer_done_ = true;
                    return;
                }
                group.assign(queue_.begin(), queue_.end());
                queue_.clear();
            }
            process_group(group);
        }
    }

    void process_group(std::vector<std::shared_ptr<CommitRequest>>& group) {
        // Pre-validate each request in full before staging ANY of its
        // relations: ingest() throws per relation, and a request half-staged
        // into the engine could not be unwound (insert-only storage).
        std::vector<std::shared_ptr<CommitRequest>> accepted;
        for (auto& req : group) {
            bool ok = true;
            for (const auto& [rel, facts] : req->batch) {
                if (!service_.ingest_allowed(rel)) {
                    req->complete_err(
                        service_.find_decl(rel) ? ErrCode::IngestRejected
                                                : ErrCode::UnknownRelation,
                        "commit rejected for relation: " + rel);
                    ok = false;
                    break;
                }
            }
            if (ok) accepted.push_back(req);
        }
        if (accepted.empty()) return;

        const auto t0 = std::chrono::steady_clock::now();
        std::vector<std::uint64_t> fresh(accepted.size(), 0);
        std::uint64_t iterations = 0;
        try {
            for (std::size_t i = 0; i < accepted.size(); ++i) {
                for (auto& [rel, facts] : accepted[i]->batch) {
                    fresh[i] += service_.engine().ingest(rel, facts);
                }
            }
            // ONE refixpoint for the whole group: this is the group commit.
            iterations = service_.engine().refixpoint(cfg_.jobs);
        } catch (const std::exception& e) {
            // ingest_allowed pre-screened the known rejection reasons, so
            // this is an engine invariant failure; fail the whole group
            // rather than guess which request poisoned it.
            for (auto& req : accepted) {
                req->complete_err(ErrCode::Internal, e.what());
            }
            return;
        }
        counters_.group_commits.fetch_add(1, std::memory_order_relaxed);
        const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
        {
            std::lock_guard<std::mutex> lk(hist_mu_);
            commit_hist_.record(static_cast<std::uint64_t>(ns));
        }
        for (std::size_t i = 0; i < accepted.size(); ++i) {
            accepted[i]->complete_ok(fresh[i], iterations);
        }
    }

    // -- bounded output queue ------------------------------------------------

    /// Per-session outgoing frame queue, bounded by total bytes. push()
    /// blocks up to the write timeout when full — if the sender cannot drain
    /// it by then the client is too slow and the session is shed.
    class OutQueue {
    public:
        explicit OutQueue(std::size_t max_bytes) : max_bytes_(max_bytes) {}

        enum class PushResult { Ok, Full, Closed };

        PushResult push(std::vector<std::uint8_t> frame, int timeout_ms) {
            std::unique_lock<std::mutex> lk(mu_);
            const bool ok = cv_space_.wait_for(
                lk, std::chrono::milliseconds(timeout_ms), [&] {
                    return closed_ || bytes_ + frame.size() <= max_bytes_ ||
                           q_.empty(); // one oversized frame may always queue
                });
            if (closed_) return PushResult::Closed;
            if (!ok) return PushResult::Full;
            bytes_ += frame.size();
            q_.push_back(std::move(frame));
            cv_data_.notify_one();
            return PushResult::Ok;
        }

        /// Blocks for data; false = closed AND drained (sender exits).
        bool pop(std::vector<std::uint8_t>& out) {
            std::unique_lock<std::mutex> lk(mu_);
            cv_data_.wait(lk, [&] { return closed_ || !q_.empty(); });
            if (q_.empty()) return false;
            out = std::move(q_.front());
            q_.pop_front();
            bytes_ -= out.size();
            cv_space_.notify_all();
            return true;
        }

        /// Stops accepting; pop() drains what is queued, then returns false.
        void close() {
            std::lock_guard<std::mutex> lk(mu_);
            closed_ = true;
            cv_data_.notify_all();
            cv_space_.notify_all();
        }

        /// Drop everything undelivered (shedding): the client is gone.
        void abort() {
            std::lock_guard<std::mutex> lk(mu_);
            closed_ = true;
            q_.clear();
            bytes_ = 0;
            cv_data_.notify_all();
            cv_space_.notify_all();
        }

    private:
        std::mutex mu_;
        std::condition_variable cv_data_, cv_space_;
        std::deque<std::vector<std::uint8_t>> q_;
        std::size_t bytes_ = 0;
        std::size_t max_bytes_;
        bool closed_ = false;
    };

    // -- session -------------------------------------------------------------

    struct Session {
        Socket sock;
        OutQueue out;
        std::thread reader;
        std::thread sender;
        std::atomic<bool> finished{false};

        explicit Session(Socket s, std::size_t max_out)
            : sock(std::move(s)), out(max_out) {}
    };

    void accept_loop() {
        while (!stop_.stopping()) {
            Socket client;
            const IoResult r = listener_.accept(client, cfg_.poll_slice_ms);
            if (r == IoResult::Ok) {
                counters_.connections.fetch_add(1, std::memory_order_relaxed);
                DTREE_METRIC_INC(net_connections);
                auto sess = std::make_shared<Session>(std::move(client),
                                                      cfg_.max_output_bytes);
                sess->sender = std::thread([this, sess] { sender_loop(*sess); });
                sess->reader = std::thread([this, sess] { session_loop(*sess); });
                {
                    std::lock_guard<std::mutex> lk(sessions_mu_);
                    sessions_.push_back(sess);
                }
            } else if (r == IoResult::Error) {
                break; // listener closed under us (shutdown) or fatal
            }
            reap_sessions(/*all=*/false);
        }
        // Stop point: close remaining client sockets' READ side only, so
        // session readers unblock promptly while the write side stays open —
        // sender threads must still flush queued responses (a COMMIT_OK for
        // an applied group commit is a durability promise; killing the write
        // direction here would turn it into a connection error). Staged-but-
        // uncommitted batches die with their sessions (a commit is only
        // durable once COMMIT was enqueued).
        std::lock_guard<std::mutex> lk(sessions_mu_);
        for (auto& s : sessions_) s->sock.shutdown_read();
    }

    void reap_sessions(bool all) {
        std::vector<std::shared_ptr<Session>> dead;
        {
            std::lock_guard<std::mutex> lk(sessions_mu_);
            for (auto it = sessions_.begin(); it != sessions_.end();) {
                if (all || (*it)->finished.load(std::memory_order_acquire)) {
                    dead.push_back(*it);
                    it = sessions_.erase(it);
                } else {
                    ++it;
                }
            }
        }
        for (auto& s : dead) {
            if (s->reader.joinable()) s->reader.join();
            if (s->sender.joinable()) s->sender.join();
        }
    }

    void sender_loop(Session& sess) {
        std::vector<std::uint8_t> frame;
        while (sess.out.pop(frame)) {
            const IoResult r =
                sess.sock.send_all(frame.data(), frame.size(), cfg_.write_timeout_ms);
            if (r != IoResult::Ok) {
                if (r == IoResult::Timeout) shed(sess);
                sess.out.abort();
                sess.sock.shutdown_both(); // unblock the reader too
                return;
            }
            counters_.bytes_out.fetch_add(frame.size(), std::memory_order_relaxed);
            DTREE_METRIC_ADD(net_bytes_out, frame.size());
        }
    }

    void shed(Session& sess) {
        counters_.sessions_shed.fetch_add(1, std::memory_order_relaxed);
        DTREE_METRIC_INC(net_sessions_shed);
        (void)sess;
    }

    /// Queues one frame toward the client; false = backpressure overflow or
    /// closed queue (session is being torn down) — caller should stop.
    bool send_frame(Session& sess, std::vector<std::uint8_t> frame) {
        counters_.frames_out.fetch_add(1, std::memory_order_relaxed);
        DTREE_METRIC_INC(net_frames_out);
        const auto r = sess.out.push(std::move(frame), cfg_.write_timeout_ms);
        if (r == OutQueue::PushResult::Full) {
            shed(sess);
            sess.out.abort();
            return false;
        }
        return r == OutQueue::PushResult::Ok;
    }

    bool send_error(Session& sess, ErrCode code, const std::string& msg) {
        counters_.errors_sent.fetch_add(1, std::memory_order_relaxed);
        return send_frame(sess, encode_error(code, msg));
    }

    void session_loop(Session& sess) {
        try {
            session_run(sess);
        } catch (const std::exception& e) {
            // A decoder/handler failure (including bad_alloc on a hostile
            // payload) closes THIS session, never the process: an escaped
            // exception on a reader thread would be std::terminate.
            try {
                send_error(sess, ErrCode::Internal, e.what());
            } catch (...) {
            }
        } catch (...) {
            try {
                send_error(sess, ErrCode::Internal, "internal error");
            } catch (...) {
            }
        }
        sess.out.close(); // sender drains remaining frames, then exits
        sess.finished.store(true, std::memory_order_release);
    }

    void session_run(Session& sess) {
        FrameDecoder decoder(cfg_.max_frame);
        bool hello_done = false;
        std::size_t batch_tuples = 0;
        typename Service::Batch batch;
        std::uint8_t buf[16 * 1024];
        std::int64_t last_activity = posix::now_ms();

        for (;;) {
            // Pump decoded frames before reading more bytes.
            Frame f;
            for (;;) {
                const auto ev = decoder.next(f);
                if (ev == FrameDecoder::Event::None) break;
                if (ev == FrameDecoder::Event::Oversized) {
                    if (!send_error(sess, ErrCode::FrameTooLarge,
                                    "frame exceeds max_frame")) {
                        return;
                    }
                    continue;
                }
                if (ev == FrameDecoder::Event::Malformed) {
                    send_error(sess, ErrCode::BadFrame,
                               "unrecoverable framing error");
                    return;
                }
                counters_.frames_in.fetch_add(1, std::memory_order_relaxed);
                counters_.bytes_in.fetch_add(5 + f.payload.size(),
                                             std::memory_order_relaxed);
                DTREE_METRIC_INC(net_frames_in);
                DTREE_METRIC_ADD(net_bytes_in, 5 + f.payload.size());
                switch (handle_frame(sess, f, hello_done, batch, batch_tuples)) {
                    case FrameAction::Continue: break;
                    case FrameAction::CloseSession: return;
                }
            }

            if (stop_.stopping()) {
                // Drain point for readers: stop serving new requests. Any
                // commit already enqueued was awaited inside handle_frame, so
                // acknowledged writes are durable.
                return;
            }

            std::size_t got = 0;
            const IoResult r =
                sess.sock.recv_some(buf, sizeof(buf), got, cfg_.poll_slice_ms);
            if (r == IoResult::Ok) {
                last_activity = posix::now_ms();
                decoder.feed(buf, got);
            } else if (r == IoResult::Timeout) {
                if (posix::now_ms() - last_activity >= cfg_.read_timeout_ms) {
                    counters_.timeouts.fetch_add(1, std::memory_order_relaxed);
                    DTREE_METRIC_INC(net_timeouts);
                    send_error(sess, ErrCode::Timeout, "read timeout");
                    return;
                }
            } else {
                return; // Closed / Error: peer went away
            }
        }
    }

    enum class FrameAction { Continue, CloseSession };

    FrameAction handle_frame(Session& sess, const Frame& f, bool& hello_done,
                             typename Service::Batch& batch,
                             std::size_t& batch_tuples) {
        if (!hello_done) {
            HelloMsg hello;
            if (!decode_hello(f, hello)) {
                send_error(sess, ErrCode::NeedHello,
                           "first frame must be HELLO");
                return FrameAction::CloseSession;
            }
            if (!hello_acceptable(hello)) {
                send_error(sess, ErrCode::BadVersion,
                           "unsupported protocol version " +
                               std::to_string(hello.version));
                return FrameAction::CloseSession;
            }
            hello_done = true;
            HelloOkMsg ok;
            ok.version = kProtocolVersion;
            ok.max_frame = static_cast<std::uint32_t>(cfg_.max_frame);
            ok.max_batch = static_cast<std::uint32_t>(cfg_.max_batch);
            return send_frame(sess, encode_hello_ok(ok))
                       ? FrameAction::Continue
                       : FrameAction::CloseSession;
        }

        switch (f.op) {
            case Op::Query: {
                QueryMsg m;
                if (!decode_query(f, m)) return bad_frame(sess);
                const auto* d = service_.find_decl(m.rel);
                if (!d) return unknown_relation(sess, m.rel);
                if (m.arity != d->arity()) {
                    return keep_after(send_error(sess, ErrCode::BadRequest,
                                                 "arity mismatch for " + m.rel));
                }
                const auto res = service_.query(m.rel, m.tuple);
                QueryOkMsg ok;
                ok.found = res.found;
                ok.epoch = res.epoch;
                return keep_after(send_frame(sess, encode_query_ok(ok)));
            }
            case Op::Range: {
                RangeMsg m;
                if (!decode_range(f, m)) return bad_frame(sess);
                const auto* d = service_.find_decl(m.rel);
                if (!d) return unknown_relation(sess, m.rel);
                if (m.prefix > d->arity() || m.arity < m.prefix) {
                    return keep_after(send_error(sess, ErrCode::BadRequest,
                                                 "bad prefix for " + m.rel));
                }
                return handle_range(sess, m, static_cast<std::uint8_t>(d->arity()));
            }
            case Op::Count: {
                CountMsg m;
                if (!decode_count(f, m)) return bad_frame(sess);
                if (!service_.find_decl(m.rel)) return unknown_relation(sess, m.rel);
                const auto res = service_.count(m.rel);
                CountOkMsg ok;
                ok.tuples = res.tuples;
                ok.epoch = res.epoch;
                return keep_after(send_frame(sess, encode_count_ok(ok)));
            }
            case Op::Fact: {
                FactMsg m;
                if (!decode_fact(f, m)) return bad_frame(sess);
                const auto* d = service_.find_decl(m.rel);
                if (!d) return unknown_relation(sess, m.rel);
                if (m.arity != d->arity()) {
                    return keep_after(send_error(sess, ErrCode::BadRequest,
                                                 "arity mismatch for " + m.rel));
                }
                if (!service_.ingest_allowed(m.rel)) {
                    return keep_after(send_error(
                        sess, ErrCode::IngestRejected,
                        m.rel + " is read under negation; cannot ingest"));
                }
                if (batch_tuples + 1 > cfg_.max_batch) {
                    return keep_after(send_error(sess, ErrCode::BatchLimit,
                                                 "session batch limit reached"));
                }
                batch[m.rel].push_back(m.tuple);
                ++batch_tuples;
                return keep_after(send_frame(
                    sess, encode_buffered(Op::FactOk,
                                          static_cast<std::uint32_t>(batch_tuples))));
            }
            case Op::Load: {
                LoadMsg m;
                if (!decode_load(f, m)) return bad_frame(sess);
                const auto* d = service_.find_decl(m.rel);
                if (!d) return unknown_relation(sess, m.rel);
                if (m.arity != d->arity()) {
                    return keep_after(send_error(sess, ErrCode::BadRequest,
                                                 "arity mismatch for " + m.rel));
                }
                if (!service_.ingest_allowed(m.rel)) {
                    return keep_after(send_error(
                        sess, ErrCode::IngestRejected,
                        m.rel + " is read under negation; cannot ingest"));
                }
                if (batch_tuples + m.tuples.size() > cfg_.max_batch) {
                    return keep_after(send_error(sess, ErrCode::BatchLimit,
                                                 "session batch limit reached"));
                }
                auto& dst = batch[m.rel];
                dst.insert(dst.end(), m.tuples.begin(), m.tuples.end());
                batch_tuples += m.tuples.size();
                return keep_after(send_frame(
                    sess, encode_buffered(Op::LoadOk,
                                          static_cast<std::uint32_t>(batch_tuples))));
            }
            case Op::Commit: {
                if (!decode_commit(f)) return bad_frame(sess);
                if (batch.empty()) {
                    CommitOkMsg ok; // empty commit: trivially applied
                    return keep_after(send_frame(sess, encode_commit_ok(ok)));
                }
                auto req = std::make_shared<CommitRequest>();
                req->batch = std::move(batch);
                batch.clear();
                batch_tuples = 0;
                if (!enqueue_commit(req)) {
                    return keep_after(send_error(sess, ErrCode::ShuttingDown,
                                                 "server is draining"));
                }
                // Block THIS session only; reads on other sessions proceed
                // against snapshots while the writer runs the group.
                req->await();
                if (!req->ok) {
                    return keep_after(send_error(sess, req->code, req->error));
                }
                CommitOkMsg ok;
                ok.fresh = req->fresh;
                ok.iterations = req->iterations;
                return keep_after(send_frame(sess, encode_commit_ok(ok)));
            }
            case Op::Stats: {
                if (!decode_stats(f)) return bad_frame(sess);
                return keep_after(send_frame(sess, encode_stats_ok(stats_json())));
            }
            case Op::Goodbye: {
                send_frame(sess, encode_bye());
                return FrameAction::CloseSession;
            }
            case Op::Hello: {
                return keep_after(
                    send_error(sess, ErrCode::BadRequest, "duplicate HELLO"));
            }
            default:
                return keep_after(
                    send_error(sess, ErrCode::UnknownOp, "unknown opcode"));
        }
    }

    FrameAction handle_range(Session& sess, const RangeMsg& m, std::uint8_t arity) {
        // One snapshot pin covers the whole scan, so every chunk of the
        // response reflects the same epoch; chunking bounds frame size AND
        // per-session memory — chunks are enqueued from inside the scan
        // callback, so a full-relation RANGE never materializes the relation
        // into session-local heap, and the bounded output queue applies its
        // backpressure per chunk while the scan is still running.
        RangeOkMsg out;
        out.arity = arity;
        out.tuples.reserve(kRangeChunkTuples);
        bool send_failed = false;
        service_.scan(
            m.rel, m.bound, m.prefix,
            [&](std::uint64_t epoch) { out.epoch = epoch; },
            [&](const datalog::StorageTuple& t) {
                if (send_failed) return;
                out.tuples.push_back(t);
                if (out.tuples.size() >= kRangeChunkTuples) {
                    out.last = false;
                    if (!send_frame(sess, encode_range_ok(out))) {
                        send_failed = true;
                    }
                    out.tuples.clear();
                }
            });
        if (send_failed) return FrameAction::CloseSession;
        out.last = true; // final chunk: whatever remains, possibly empty
        return keep_after(send_frame(sess, encode_range_ok(out)));
    }

    FrameAction bad_frame(Session& sess) {
        return keep_after(
            send_error(sess, ErrCode::BadFrame, "malformed payload"));
    }
    FrameAction unknown_relation(Session& sess, const std::string& rel) {
        return keep_after(
            send_error(sess, ErrCode::UnknownRelation, "unknown relation: " + rel));
    }
    /// Session survives unless the send side already collapsed.
    FrameAction keep_after(bool sent) {
        return sent ? FrameAction::Continue : FrameAction::CloseSession;
    }

    ServerConfig cfg_;
    Service service_;
    Listener listener_;
    StopController stop_;
    ServerCounters counters_;

    std::thread acceptor_;
    std::vector<std::shared_ptr<Session>> sessions_;
    std::mutex sessions_mu_;

    std::thread writer_;
    std::deque<std::shared_ptr<CommitRequest>> queue_;
    std::mutex queue_mu_;
    std::condition_variable queue_cv_;
    bool writer_done_ = false;

    util::Histogram commit_hist_;
    std::mutex hist_mu_;
};

} // namespace dtree::net

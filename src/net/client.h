#pragma once

// Blocking client for the soufflette wire protocol: one socket, one
// outstanding request at a time, every call a full round trip. Used by the
// loopback integration test and bench/serve_net's client threads; simple on
// purpose — the concurrency story lives server-side (sessions + snapshots),
// a client gets parallelism by opening more connections.
//
// Error model: transport failures and ERROR frames both surface as NetError;
// for protocol errors err() carries the server's ErrCode so callers can
// distinguish "unknown relation" from "batch limit" from "shutting down".

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "net/socket.h"

namespace dtree::net {

class NetError : public std::runtime_error {
public:
    NetError(ErrCode code, const std::string& msg)
        : std::runtime_error(std::string(err_name(code)) + ": " + msg),
          code_(code) {}
    explicit NetError(const std::string& msg)
        : std::runtime_error(msg), code_(ErrCode::Internal) {}

    ErrCode err() const { return code_; }

private:
    ErrCode code_;
};

class Client {
public:
    /// Connects and completes the HELLO handshake. Throws NetError.
    Client(const std::string& host, std::uint16_t port, int timeout_ms = 10000)
        : timeout_ms_(timeout_ms) {
        std::string err;
        if (!connect_tcp(host, port, timeout_ms, sock_, err)) {
            throw NetError(err);
        }
        const auto hello = encode_hello(kProtocolVersion);
        send(hello);
        const Frame f = recv_expect(Op::HelloOk);
        if (!decode_hello_ok(f, hello_)) {
            throw NetError("malformed HELLO_OK");
        }
    }

    const HelloOkMsg& server_limits() const { return hello_; }

    struct QueryResult {
        bool found = false;
        std::uint64_t epoch = 0;
    };

    QueryResult query(const std::string& rel, const datalog::StorageTuple& t,
                      unsigned arity) {
        send(encode_query(rel, t, arity));
        const Frame f = recv_expect(Op::QueryOk);
        QueryOkMsg m;
        if (!decode_query_ok(f, m)) throw NetError("malformed QUERY_OK");
        return {m.found, m.epoch};
    }

    /// Streams a prefix range scan; fn(tuple) per result row. Returns the
    /// pinned epoch the whole scan was served at.
    template <typename Fn>
    std::uint64_t range(const std::string& rel, const datalog::StorageTuple& bound,
                        unsigned prefix, unsigned arity, Fn&& fn) {
        send(encode_range(rel, bound, prefix, arity));
        std::uint64_t epoch = 0;
        for (;;) {
            const Frame f = recv_expect(Op::RangeOk);
            RangeOkMsg m;
            if (!decode_range_ok(f, m)) throw NetError("malformed RANGE_OK");
            epoch = m.epoch;
            for (const auto& t : m.tuples) fn(t);
            if (m.last) return epoch;
        }
    }

    /// Buffers one fact server-side; returns the session's staged-tuple count.
    std::uint32_t fact(const std::string& rel, const datalog::StorageTuple& t,
                       unsigned arity) {
        send(encode_fact(rel, t, arity));
        const Frame f = recv_expect(Op::FactOk);
        BufferedMsg m;
        if (!decode_buffered(f, Op::FactOk, m)) throw NetError("malformed FACT_OK");
        return m.buffered;
    }

    std::uint32_t load(const std::string& rel,
                       const std::vector<datalog::StorageTuple>& ts, unsigned arity) {
        send(encode_load(rel, ts, arity));
        const Frame f = recv_expect(Op::LoadOk);
        BufferedMsg m;
        if (!decode_buffered(f, Op::LoadOk, m)) throw NetError("malformed LOAD_OK");
        return m.buffered;
    }

    struct CommitResult {
        std::uint64_t fresh = 0;
        std::uint64_t iterations = 0;
    };

    /// Group-commits everything staged on this session. Blocks until the
    /// server's writer thread has applied the batch (an acked commit is
    /// durable in the running engine).
    CommitResult commit(int timeout_ms = -1) {
        send(encode_commit());
        // Commits ride the writer queue behind a refixpoint; allow a longer
        // (caller-chosen) wait than the default round-trip budget.
        const Frame f = recv_expect(Op::CommitOk,
                                    timeout_ms < 0 ? 10 * timeout_budget() : timeout_ms);
        CommitOkMsg m;
        if (!decode_commit_ok(f, m)) throw NetError("malformed COMMIT_OK");
        return {m.fresh, m.iterations};
    }

    struct CountResult {
        std::uint64_t tuples = 0;
        std::uint64_t epoch = 0;
    };

    CountResult count(const std::string& rel) {
        send(encode_count(rel));
        const Frame f = recv_expect(Op::CountOk);
        CountOkMsg m;
        if (!decode_count_ok(f, m)) throw NetError("malformed COUNT_OK");
        return {m.tuples, m.epoch};
    }

    std::string stats() {
        send(encode_stats());
        const Frame f = recv_expect(Op::StatsOk);
        StatsOkMsg m;
        if (!decode_stats_ok(f, m)) throw NetError("malformed STATS_OK");
        return m.json;
    }

    /// Graceful close: GOODBYE, wait for BYE, drop the socket.
    void goodbye() {
        send(encode_goodbye());
        (void)recv_expect(Op::Bye);
        sock_.close();
    }

    /// Escape hatch for protocol tests: raw frame out, next frame back in
    /// (whatever it is — ERROR frames come back as-is, not thrown).
    Frame roundtrip_raw(const std::vector<std::uint8_t>& frame) {
        send(frame);
        return recv_frame(timeout_budget());
    }

    void send_raw(const std::vector<std::uint8_t>& frame) { send(frame); }
    Frame recv_any(int timeout_ms = -1) {
        return recv_frame(timeout_ms < 0 ? timeout_budget() : timeout_ms);
    }

    Socket& socket() { return sock_; }

private:
    int timeout_budget() const { return timeout_ms_; }

    void send(const std::vector<std::uint8_t>& frame) {
        const IoResult r = sock_.send_all(frame.data(), frame.size(), timeout_ms_);
        if (r != IoResult::Ok) throw NetError("send failed");
    }

    Frame recv_frame(int timeout_ms) {
        Frame f;
        for (;;) {
            const auto ev = decoder_.next(f);
            if (ev == FrameDecoder::Event::Frame) return f;
            if (ev != FrameDecoder::Event::None) {
                throw NetError("framing error from server");
            }
            std::uint8_t buf[16 * 1024];
            std::size_t got = 0;
            const IoResult r = sock_.recv_some(buf, sizeof(buf), got, timeout_ms);
            if (r == IoResult::Timeout) throw NetError(ErrCode::Timeout, "recv timeout");
            if (r != IoResult::Ok) throw NetError("connection lost");
            decoder_.feed(buf, got);
        }
    }

    /// Receives one frame and requires opcode `want`; ERROR frames become
    /// NetError with the server's code.
    Frame recv_expect(Op want, int timeout_ms = -1) {
        const Frame f = recv_frame(timeout_ms < 0 ? timeout_budget() : timeout_ms);
        if (f.op == Op::Error) {
            ErrorMsg e;
            if (decode_error(f, e)) throw NetError(e.code, e.message);
            throw NetError("malformed ERROR frame");
        }
        if (f.op != want) throw NetError("unexpected response opcode");
        return f;
    }

    Socket sock_;
    FrameDecoder decoder_{kDefaultMaxFrame};
    HelloOkMsg hello_;
    int timeout_ms_;
};

} // namespace dtree::net

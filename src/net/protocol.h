#pragma once

// The soufflette wire protocol (DESIGN.md §13): a length-prefixed binary
// framing shared by the server (src/net/server.h), the blocking client
// library (src/net/client.h), and the codec unit tests — the codec is pure
// byte manipulation over in-memory buffers, so framing corner cases
// (truncation, oversize, garbage, byte-at-a-time partial reads) are testable
// without a socket in sight.
//
// Frame grammar (all integers little-endian, fixed width):
//
//   frame   := len:u32 body            len = |body|, 1 <= len <= max_frame
//   body    := op:u8 payload
//   str     := n:u16 byte*n            relation names, error messages
//   tuple   := arity:u8 value:u64*arity   (arity <= kMaxArity; trailing
//                                          storage columns read back as 0)
//
// Counted tuple blocks (LOAD, RANGE_OK) additionally require arity >= 1 —
// the parser forbids nullary relations, and with arity 0 a tuple would
// consume zero payload bytes, so a lying count could not be bounded by the
// frame size. Decoders check count * 8 * arity against the remaining
// payload BEFORE looping, so a hostile count fails fast without allocating.
//
// Requests (client -> server) and their responses:
//
//   HELLO   version:u16                -> HELLO_OK version max_frame max_batch
//   QUERY   rel:str t:tuple            -> QUERY_OK  found:u8 epoch:u64
//   RANGE   rel:str prefix:u8 b:tuple  -> RANGE_OK* (chunked; last:u8 flags
//                                          the final chunk)
//   FACT    rel:str t:tuple            -> FACT_OK   buffered:u32
//   LOAD    rel:str arity:u8 n:u32 v*  -> LOAD_OK   buffered:u32
//   COMMIT                             -> COMMIT_OK fresh:u64 iterations:u64
//   COUNT   rel:str                    -> COUNT_OK  n:u64 epoch:u64
//   STATS                              -> STATS_OK  json:rest-of-payload
//   GOODBYE                            -> BYE (then the server closes)
//
// Any request can instead draw ERROR code:u16 msg:str — a *structured* error
// frame: except for BadVersion / NeedHello / Malformed framing, the session
// survives and the client may continue. A frame whose length header exceeds
// max_frame is skipped (the body is drained, never buffered) and answered
// with ERROR FrameTooLarge rather than a disconnect; only an unparseable
// header (len == 0) is fatal, because the stream cannot be resynchronised.
//
// Version negotiation: HELLO must be the first frame of a session; the
// server accepts exactly kProtocolVersion today and rejects anything else
// with ERROR BadVersion before closing. HELLO_OK advertises the server's
// frame/batch limits so clients can size LOAD batches without guessing.

#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "datalog/ast.h"

namespace dtree::net {

using datalog::kMaxArity;
using datalog::StorageTuple;
using datalog::Value;

inline constexpr std::uint16_t kProtocolVersion = 1;

/// Default robustness-envelope limits; ServerConfig can override them, and
/// HELLO_OK reports the effective values to the client.
inline constexpr std::size_t kDefaultMaxFrame = 1u << 20;  ///< bytes per frame
inline constexpr std::size_t kDefaultMaxBatch = 1u << 14;  ///< tuples buffered
/// Tuples per RANGE_OK chunk: bounded so a chunk frame stays far below
/// kDefaultMaxFrame (4096 * (1 + 8 * kMaxArity) + header ~ 135 KiB).
inline constexpr std::size_t kRangeChunkTuples = 4096;

enum class Op : std::uint8_t {
    // client -> server
    Hello = 0x01,
    Query = 0x02,
    Range = 0x03,
    Fact = 0x04,
    Load = 0x05,
    Commit = 0x06,
    Count = 0x07,
    Stats = 0x08,
    Goodbye = 0x09,
    // server -> client
    HelloOk = 0x81,
    QueryOk = 0x82,
    RangeOk = 0x83,
    FactOk = 0x84,
    LoadOk = 0x85,
    CommitOk = 0x86,
    CountOk = 0x87,
    StatsOk = 0x88,
    Bye = 0x89,
    Error = 0xFF,
};

enum class ErrCode : std::uint16_t {
    BadFrame = 1,        ///< payload did not parse (wrong shape / trailing bytes)
    BadVersion = 2,      ///< HELLO version not supported (fatal)
    NeedHello = 3,       ///< request before HELLO completed (fatal)
    UnknownOp = 4,       ///< opcode not in the table above (session survives)
    UnknownRelation = 5, ///< relation name not declared by the program
    BadRequest = 6,      ///< arity/prefix out of range for the relation
    FrameTooLarge = 7,   ///< length header above max_frame; body was skipped
    BatchLimit = 8,      ///< session buffer would exceed max_batch tuples
    IngestRejected = 9,  ///< relation feeds a negation (insert-only storage)
    ShuttingDown = 10,   ///< server is draining; no new commits accepted
    Timeout = 11,        ///< read deadline expired (server closes after this)
    Internal = 12,
};

inline const char* err_name(ErrCode c) {
    switch (c) {
        case ErrCode::BadFrame: return "bad-frame";
        case ErrCode::BadVersion: return "bad-version";
        case ErrCode::NeedHello: return "need-hello";
        case ErrCode::UnknownOp: return "unknown-op";
        case ErrCode::UnknownRelation: return "unknown-relation";
        case ErrCode::BadRequest: return "bad-request";
        case ErrCode::FrameTooLarge: return "frame-too-large";
        case ErrCode::BatchLimit: return "batch-limit";
        case ErrCode::IngestRejected: return "ingest-rejected";
        case ErrCode::ShuttingDown: return "shutting-down";
        case ErrCode::Timeout: return "timeout";
        case ErrCode::Internal: return "internal";
    }
    return "?";
}

/// One decoded frame: opcode + raw payload (without the length header).
struct Frame {
    Op op = Op::Error;
    std::vector<std::uint8_t> payload;
};

// -- payload serialisation ---------------------------------------------------

/// Builds one frame: opcode byte + payload, rendered with the 4-byte length
/// prefix by finish(). Append-only; no I/O.
class FrameBuilder {
public:
    explicit FrameBuilder(Op op) { body_.push_back(static_cast<std::uint8_t>(op)); }

    FrameBuilder& u8(std::uint8_t v) {
        body_.push_back(v);
        return *this;
    }
    FrameBuilder& u16(std::uint16_t v) { return le(v, 2); }
    FrameBuilder& u32(std::uint32_t v) { return le(v, 4); }
    FrameBuilder& u64(std::uint64_t v) { return le(v, 8); }

    FrameBuilder& str(const std::string& s) {
        u16(static_cast<std::uint16_t>(
            std::min<std::size_t>(s.size(), std::numeric_limits<std::uint16_t>::max())));
        body_.insert(body_.end(), s.begin(),
                     s.begin() + static_cast<std::ptrdiff_t>(std::min<std::size_t>(
                                     s.size(), std::numeric_limits<std::uint16_t>::max())));
        return *this;
    }

    /// arity:u8 + arity u64 values (columns past arity are not transmitted).
    FrameBuilder& tuple(const StorageTuple& t, unsigned arity) {
        u8(static_cast<std::uint8_t>(arity));
        for (unsigned c = 0; c < arity; ++c) u64(t[c]);
        return *this;
    }

    /// Raw trailing bytes (the STATS json rides as rest-of-payload).
    FrameBuilder& raw(const std::string& s) {
        body_.insert(body_.end(), s.begin(), s.end());
        return *this;
    }

    /// The full wire frame: len:u32 (LE) + body.
    std::vector<std::uint8_t> finish() const {
        std::vector<std::uint8_t> out;
        out.reserve(4 + body_.size());
        const std::uint32_t len = static_cast<std::uint32_t>(body_.size());
        for (unsigned i = 0; i < 4; ++i) {
            out.push_back(static_cast<std::uint8_t>((len >> (8 * i)) & 0xFF));
        }
        out.insert(out.end(), body_.begin(), body_.end());
        return out;
    }

private:
    FrameBuilder& le(std::uint64_t v, unsigned bytes) {
        for (unsigned i = 0; i < bytes; ++i) {
            body_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
        }
        return *this;
    }

    std::vector<std::uint8_t> body_;
};

/// Bounds-checked payload reader: every accessor returns false instead of
/// reading past the end, so garbage payloads degrade to a parse failure (an
/// ERROR frame), never out-of-bounds access. decode_* helpers additionally
/// require full consumption — trailing bytes are a malformed payload too.
class PayloadReader {
public:
    PayloadReader(const std::uint8_t* data, std::size_t n) : p_(data), n_(n) {}
    explicit PayloadReader(const std::vector<std::uint8_t>& v)
        : PayloadReader(v.data(), v.size()) {}

    bool u8(std::uint8_t& out) {
        if (n_ - i_ < 1) return false;
        out = p_[i_++];
        return true;
    }
    bool u16(std::uint16_t& out) { return le(out, 2); }
    bool u32(std::uint32_t& out) { return le(out, 4); }
    bool u64(std::uint64_t& out) { return le(out, 8); }

    bool str(std::string& out) {
        std::uint16_t n = 0;
        if (!u16(n)) return false;
        if (n_ - i_ < n) return false;
        out.assign(reinterpret_cast<const char*>(p_ + i_), n);
        i_ += n;
        return true;
    }

    /// Rejects arity > kMaxArity; columns past the wire arity read as 0.
    bool tuple(StorageTuple& out, std::uint8_t& arity) {
        if (!u8(arity)) return false;
        if (arity > kMaxArity) return false;
        out = StorageTuple{};
        for (unsigned c = 0; c < arity; ++c) {
            std::uint64_t v = 0;
            if (!u64(v)) return false;
            out[c] = v;
        }
        return true;
    }

    /// Everything left (STATS json).
    void rest(std::string& out) {
        out.assign(reinterpret_cast<const char*>(p_ + i_), n_ - i_);
        i_ = n_;
    }

    std::size_t remaining() const { return n_ - i_; }
    bool done() const { return i_ == n_; }

private:
    template <typename T>
    bool le(T& out, unsigned bytes) {
        if (n_ - i_ < bytes) return false;
        std::uint64_t v = 0;
        for (unsigned b = 0; b < bytes; ++b) {
            v |= static_cast<std::uint64_t>(p_[i_ + b]) << (8 * b);
        }
        i_ += bytes;
        out = static_cast<T>(v);
        return true;
    }

    const std::uint8_t* p_;
    std::size_t n_;
    std::size_t i_ = 0;
};

// -- incremental frame decoding ----------------------------------------------

/// Incremental framing decoder: feed() arbitrary byte chunks (a socket read,
/// one byte at a time in the codec tests — framing must be correct at every
/// split point), next() pops complete frames. Oversized frames are skipped
/// in O(1) memory (the body is consumed, never buffered) and surfaced as one
/// Oversized event so the session can answer with ERROR FrameTooLarge and
/// keep going; a zero-length header is Malformed and sticky — the stream has
/// no resynchronisation point, the connection must close.
class FrameDecoder {
public:
    explicit FrameDecoder(std::size_t max_frame = kDefaultMaxFrame)
        : max_frame_(max_frame) {}

    enum class Event { None, Frame, Oversized, Malformed };

    void feed(const std::uint8_t* data, std::size_t n) {
        buf_.insert(buf_.end(), data, data + n);
    }
    void feed(const std::vector<std::uint8_t>& v) { feed(v.data(), v.size()); }

    Event next(Frame& out) {
        if (dead_) return Event::Malformed;
        // Finish draining a skipped oversized body first.
        if (skip_ > 0) {
            const std::size_t take =
                static_cast<std::size_t>(std::min<std::uint64_t>(skip_, avail()));
            pos_ += take;
            skip_ -= take;
            compact();
            if (skip_ > 0) return Event::None;
        }
        if (avail() < 4) return Event::None;
        std::uint32_t len = 0;
        for (unsigned i = 0; i < 4; ++i) {
            len |= static_cast<std::uint32_t>(buf_[pos_ + i]) << (8 * i);
        }
        if (len == 0) {
            // No opcode byte: the framing itself is broken and there is no
            // way to find the next boundary. Fatal.
            dead_ = true;
            return Event::Malformed;
        }
        if (len > max_frame_) {
            pos_ += 4;
            skip_ = len;
            compact();
            // Caller reports FrameTooLarge; subsequent next() calls drain
            // the body as more bytes arrive, then resume normal parsing.
            return Event::Oversized;
        }
        if (avail() < 4 + static_cast<std::size_t>(len)) return Event::None;
        out.op = static_cast<Op>(buf_[pos_ + 4]);
        out.payload.assign(buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + 5),
                           buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + 4 + len));
        pos_ += 4 + len;
        compact();
        return Event::Frame;
    }

    /// Bytes buffered but not yet consumed (tests).
    std::size_t buffered() const { return avail(); }
    bool dead() const { return dead_; }

private:
    std::size_t avail() const { return buf_.size() - pos_; }

    void compact() {
        if (pos_ == buf_.size()) {
            buf_.clear();
            pos_ = 0;
        } else if (pos_ > 4096 && pos_ > buf_.size() / 2) {
            buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
            pos_ = 0;
        }
    }

    std::size_t max_frame_;
    std::vector<std::uint8_t> buf_;
    std::size_t pos_ = 0;
    std::uint64_t skip_ = 0;
    bool dead_ = false;
};

// -- typed messages ----------------------------------------------------------

struct HelloMsg {
    std::uint16_t version = 0;
};
struct HelloOkMsg {
    std::uint16_t version = 0;
    std::uint32_t max_frame = 0;
    std::uint32_t max_batch = 0;
};
struct QueryMsg {
    std::string rel;
    StorageTuple tuple{};
    std::uint8_t arity = 0;
};
struct QueryOkMsg {
    bool found = false;
    std::uint64_t epoch = 0;
};
struct RangeMsg {
    std::string rel;
    std::uint8_t prefix = 0;
    StorageTuple bound{};
    std::uint8_t arity = 0; ///< columns transmitted in `bound` (>= prefix)
};
struct RangeOkMsg {
    std::uint64_t epoch = 0;
    bool last = false;
    std::uint8_t arity = 0;
    std::vector<StorageTuple> tuples;
};
struct FactMsg {
    std::string rel;
    StorageTuple tuple{};
    std::uint8_t arity = 0;
};
struct BufferedMsg { ///< FACT_OK / LOAD_OK: session buffer size after the op
    std::uint32_t buffered = 0;
};
struct LoadMsg {
    std::string rel;
    std::uint8_t arity = 0;
    std::vector<StorageTuple> tuples;
};
struct CommitOkMsg {
    std::uint64_t fresh = 0;
    std::uint64_t iterations = 0;
};
struct CountMsg {
    std::string rel;
};
struct CountOkMsg {
    std::uint64_t tuples = 0;
    std::uint64_t epoch = 0;
};
struct StatsOkMsg {
    std::string json;
};
struct ErrorMsg {
    ErrCode code = ErrCode::Internal;
    std::string message;
};

inline std::vector<std::uint8_t> encode_hello(std::uint16_t version) {
    return FrameBuilder(Op::Hello).u16(version).finish();
}
inline std::vector<std::uint8_t> encode_hello_ok(const HelloOkMsg& m) {
    return FrameBuilder(Op::HelloOk)
        .u16(m.version)
        .u32(m.max_frame)
        .u32(m.max_batch)
        .finish();
}
inline std::vector<std::uint8_t> encode_query(const std::string& rel,
                                              const StorageTuple& t, unsigned arity) {
    return FrameBuilder(Op::Query).str(rel).tuple(t, arity).finish();
}
inline std::vector<std::uint8_t> encode_query_ok(const QueryOkMsg& m) {
    return FrameBuilder(Op::QueryOk).u8(m.found ? 1 : 0).u64(m.epoch).finish();
}
inline std::vector<std::uint8_t> encode_range(const std::string& rel,
                                              const StorageTuple& bound,
                                              unsigned prefix, unsigned arity) {
    return FrameBuilder(Op::Range)
        .str(rel)
        .u8(static_cast<std::uint8_t>(prefix))
        .tuple(bound, arity)
        .finish();
}
inline std::vector<std::uint8_t> encode_range_ok(const RangeOkMsg& m) {
    FrameBuilder b(Op::RangeOk);
    b.u64(m.epoch).u8(m.last ? 1 : 0).u8(m.arity).u32(
        static_cast<std::uint32_t>(m.tuples.size()));
    for (const auto& t : m.tuples) {
        for (unsigned c = 0; c < m.arity; ++c) b.u64(t[c]);
    }
    return b.finish();
}
inline std::vector<std::uint8_t> encode_fact(const std::string& rel,
                                             const StorageTuple& t, unsigned arity) {
    return FrameBuilder(Op::Fact).str(rel).tuple(t, arity).finish();
}
inline std::vector<std::uint8_t> encode_buffered(Op op, std::uint32_t buffered) {
    return FrameBuilder(op).u32(buffered).finish();
}
inline std::vector<std::uint8_t> encode_load(const std::string& rel,
                                             const std::vector<StorageTuple>& ts,
                                             unsigned arity) {
    FrameBuilder b(Op::Load);
    b.str(rel).u8(static_cast<std::uint8_t>(arity)).u32(
        static_cast<std::uint32_t>(ts.size()));
    for (const auto& t : ts) {
        for (unsigned c = 0; c < arity; ++c) b.u64(t[c]);
    }
    return b.finish();
}
inline std::vector<std::uint8_t> encode_commit() {
    return FrameBuilder(Op::Commit).finish();
}
inline std::vector<std::uint8_t> encode_commit_ok(const CommitOkMsg& m) {
    return FrameBuilder(Op::CommitOk).u64(m.fresh).u64(m.iterations).finish();
}
inline std::vector<std::uint8_t> encode_count(const std::string& rel) {
    return FrameBuilder(Op::Count).str(rel).finish();
}
inline std::vector<std::uint8_t> encode_count_ok(const CountOkMsg& m) {
    return FrameBuilder(Op::CountOk).u64(m.tuples).u64(m.epoch).finish();
}
inline std::vector<std::uint8_t> encode_stats() {
    return FrameBuilder(Op::Stats).finish();
}
inline std::vector<std::uint8_t> encode_stats_ok(const std::string& json) {
    return FrameBuilder(Op::StatsOk).raw(json).finish();
}
inline std::vector<std::uint8_t> encode_goodbye() {
    return FrameBuilder(Op::Goodbye).finish();
}
inline std::vector<std::uint8_t> encode_bye() { return FrameBuilder(Op::Bye).finish(); }
inline std::vector<std::uint8_t> encode_error(ErrCode code, const std::string& msg) {
    return FrameBuilder(Op::Error)
        .u16(static_cast<std::uint16_t>(code))
        .str(msg)
        .finish();
}

inline bool decode_hello(const Frame& f, HelloMsg& m) {
    if (f.op != Op::Hello) return false;
    PayloadReader r(f.payload);
    return r.u16(m.version) && r.done();
}
inline bool decode_hello_ok(const Frame& f, HelloOkMsg& m) {
    if (f.op != Op::HelloOk) return false;
    PayloadReader r(f.payload);
    return r.u16(m.version) && r.u32(m.max_frame) && r.u32(m.max_batch) && r.done();
}
inline bool decode_query(const Frame& f, QueryMsg& m) {
    if (f.op != Op::Query) return false;
    PayloadReader r(f.payload);
    return r.str(m.rel) && r.tuple(m.tuple, m.arity) && r.done();
}
inline bool decode_query_ok(const Frame& f, QueryOkMsg& m) {
    if (f.op != Op::QueryOk) return false;
    PayloadReader r(f.payload);
    std::uint8_t found = 0;
    if (!(r.u8(found) && r.u64(m.epoch) && r.done())) return false;
    m.found = found != 0;
    return true;
}
inline bool decode_range(const Frame& f, RangeMsg& m) {
    if (f.op != Op::Range) return false;
    PayloadReader r(f.payload);
    return r.str(m.rel) && r.u8(m.prefix) && r.tuple(m.bound, m.arity) && r.done();
}
inline bool decode_range_ok(const Frame& f, RangeOkMsg& m) {
    if (f.op != Op::RangeOk) return false;
    PayloadReader r(f.payload);
    std::uint8_t last = 0;
    std::uint32_t n = 0;
    if (!(r.u64(m.epoch) && r.u8(last) && r.u8(m.arity) && r.u32(n))) return false;
    if (m.arity == 0 || m.arity > kMaxArity) return false;
    if (r.remaining() != static_cast<std::uint64_t>(n) * 8u * m.arity) return false;
    m.last = last != 0;
    m.tuples.clear();
    m.tuples.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        StorageTuple t{};
        for (unsigned c = 0; c < m.arity; ++c) {
            std::uint64_t v = 0;
            if (!r.u64(v)) return false;
            t[c] = v;
        }
        m.tuples.push_back(t);
    }
    return r.done();
}
inline bool decode_fact(const Frame& f, FactMsg& m) {
    if (f.op != Op::Fact) return false;
    PayloadReader r(f.payload);
    return r.str(m.rel) && r.tuple(m.tuple, m.arity) && r.done();
}
inline bool decode_buffered(const Frame& f, Op expect, BufferedMsg& m) {
    if (f.op != expect) return false;
    PayloadReader r(f.payload);
    return r.u32(m.buffered) && r.done();
}
inline bool decode_load(const Frame& f, LoadMsg& m) {
    if (f.op != Op::Load) return false;
    PayloadReader r(f.payload);
    std::uint32_t n = 0;
    if (!(r.str(m.rel) && r.u8(m.arity) && r.u32(n))) return false;
    if (m.arity == 0 || m.arity > kMaxArity) return false;
    if (r.remaining() != static_cast<std::uint64_t>(n) * 8u * m.arity) return false;
    m.tuples.clear();
    m.tuples.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        StorageTuple t{};
        for (unsigned c = 0; c < m.arity; ++c) {
            std::uint64_t v = 0;
            if (!r.u64(v)) return false;
            t[c] = v;
        }
        m.tuples.push_back(t);
    }
    return r.done();
}
inline bool decode_commit(const Frame& f) {
    return f.op == Op::Commit && f.payload.empty();
}
inline bool decode_commit_ok(const Frame& f, CommitOkMsg& m) {
    if (f.op != Op::CommitOk) return false;
    PayloadReader r(f.payload);
    return r.u64(m.fresh) && r.u64(m.iterations) && r.done();
}
inline bool decode_count(const Frame& f, CountMsg& m) {
    if (f.op != Op::Count) return false;
    PayloadReader r(f.payload);
    return r.str(m.rel) && r.done();
}
inline bool decode_count_ok(const Frame& f, CountOkMsg& m) {
    if (f.op != Op::CountOk) return false;
    PayloadReader r(f.payload);
    return r.u64(m.tuples) && r.u64(m.epoch) && r.done();
}
inline bool decode_stats(const Frame& f) {
    return f.op == Op::Stats && f.payload.empty();
}
inline bool decode_stats_ok(const Frame& f, StatsOkMsg& m) {
    if (f.op != Op::StatsOk) return false;
    PayloadReader r(f.payload);
    r.rest(m.json);
    return true;
}
inline bool decode_goodbye(const Frame& f) {
    return f.op == Op::Goodbye && f.payload.empty();
}
inline bool decode_bye(const Frame& f) { return f.op == Op::Bye && f.payload.empty(); }
inline bool decode_error(const Frame& f, ErrorMsg& m) {
    if (f.op != Op::Error) return false;
    PayloadReader r(f.payload);
    std::uint16_t code = 0;
    if (!(r.u16(code) && r.str(m.message) && r.done())) return false;
    m.code = static_cast<ErrCode>(code);
    return true;
}

/// HELLO acceptance rule, shared by the server session and the codec test:
/// exactly the protocol version this build speaks.
inline bool hello_acceptable(const HelloMsg& m) {
    return m.version == kProtocolVersion;
}

} // namespace dtree::net

#pragma once

// Thin RAII POSIX socket layer for the wire-protocol server and client.
// Everything here is deliberately boring and deadline-correct:
//
//   * every blocking wait is poll() against a CLOCK_MONOTONIC deadline, so
//     EINTR restarts never extend a timeout;
//   * connected fds run in O_NONBLOCK mode: poll(POLLOUT) only promises
//     SOME buffer space, so on a blocking fd the subsequent full-remainder
//     send() could block on a peer that stopped reading and the deadline
//     would be illusory. Non-blocking, send() writes what fits, returns
//     EAGAIN, and the loop re-polls under the same deadline — the timeout
//     is real;
//   * send_all loops over partial writes, recv_some surfaces partial reads
//     to the framing decoder (which is split-point-agnostic by design);
//   * sends use MSG_NOSIGNAL — a peer that vanished mid-write yields an
//     error return, never a process-killing SIGPIPE;
//   * Timeout / Closed / Error are distinct results, because the session
//     layer treats them differently (read timeout = structured ERROR frame
//     then close; peer close = silent teardown).

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <time.h>
#include <unistd.h>

namespace dtree::net {

enum class IoResult { Ok, Timeout, Closed, Error };

namespace posix {

inline std::int64_t now_ms() {
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

/// poll() one fd for `events` until the absolute monotonic `deadline_ms`
/// (negative = wait forever). EINTR restarts recompute the remaining budget.
/// Returns >0 ready, 0 timeout, <0 error.
inline int poll_until(int fd, short events, std::int64_t deadline_ms) {
    for (;;) {
        int wait = -1;
        if (deadline_ms >= 0) {
            const std::int64_t left = deadline_ms - now_ms();
            if (left <= 0) return 0;
            wait = static_cast<int>(left);
        }
        struct pollfd p;
        p.fd = fd;
        p.events = events;
        p.revents = 0;
        const int rc = ::poll(&p, 1, wait);
        if (rc > 0) return rc;
        if (rc == 0) {
            if (deadline_ms < 0) continue; // spurious zero without a deadline
            return 0;
        }
        if (errno == EINTR) continue;
        return -1;
    }
}

} // namespace posix

/// Move-only owning socket. All I/O is deadline-based; timeout_ms < 0 waits
/// forever (the client library uses finite timeouts everywhere).
class Socket {
public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { close(); }

    Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
    Socket& operator=(Socket&& o) noexcept {
        if (this != &o) {
            close();
            fd_ = o.fd_;
            o.fd_ = -1;
        }
        return *this;
    }
    Socket(const Socket&) = delete;
    Socket& operator=(const Socket&) = delete;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    void close() {
        if (fd_ >= 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

    /// Both directions; unblocks a peer (or our own reader) stuck in recv.
    void shutdown_both() {
        if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
    }

    /// Read side only: our recv unblocks (returns 0), but the write side
    /// stays open so queued responses can still flush to the peer.
    void shutdown_read() {
        if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
    }

    /// O_NONBLOCK: required for deadline-correct send_all/recv_some (see the
    /// header comment). Every connected socket gets this at creation.
    bool set_nonblocking() {
        if (fd_ < 0) return false;
        const int flags = ::fcntl(fd_, F_GETFL, 0);
        return flags >= 0 && ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) == 0;
    }

    /// Writes all `n` bytes or reports why it could not: partial writes loop,
    /// EINTR retries, EPIPE/ECONNRESET map to Closed.
    IoResult send_all(const void* data, std::size_t n, int timeout_ms) {
        const std::uint8_t* p = static_cast<const std::uint8_t*>(data);
        const std::int64_t deadline =
            timeout_ms < 0 ? -1 : posix::now_ms() + timeout_ms;
        std::size_t sent = 0;
        while (sent < n) {
            const int ready = posix::poll_until(fd_, POLLOUT, deadline);
            if (ready == 0) return IoResult::Timeout;
            if (ready < 0) return IoResult::Error;
            const ssize_t rc = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
            if (rc > 0) {
                sent += static_cast<std::size_t>(rc);
                continue;
            }
            if (rc < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
                continue;
            }
            if (rc < 0 && (errno == EPIPE || errno == ECONNRESET)) {
                return IoResult::Closed;
            }
            return IoResult::Error;
        }
        return IoResult::Ok;
    }

    /// One recv of up to `cap` bytes (the framing decoder accepts any chunk
    /// size). `got` = 0 with Ok never happens; orderly peer shutdown is
    /// Closed.
    IoResult recv_some(void* buf, std::size_t cap, std::size_t& got, int timeout_ms) {
        got = 0;
        const std::int64_t deadline =
            timeout_ms < 0 ? -1 : posix::now_ms() + timeout_ms;
        for (;;) {
            const int ready = posix::poll_until(fd_, POLLIN, deadline);
            if (ready == 0) return IoResult::Timeout;
            if (ready < 0) return IoResult::Error;
            const ssize_t rc = ::recv(fd_, buf, cap, 0);
            if (rc > 0) {
                got = static_cast<std::size_t>(rc);
                return IoResult::Ok;
            }
            if (rc == 0) return IoResult::Closed;
            if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
            if (errno == ECONNRESET) return IoResult::Closed;
            return IoResult::Error;
        }
    }

private:
    int fd_ = -1;
};

/// Loopback listener. Binds 127.0.0.1 only: this server speaks an
/// unauthenticated protocol and is meant for same-host clients (benches,
/// tests, local tooling); exposing it wider is a deliberate future step.
class Listener {
public:
    Listener() = default;

    /// Binds and listens on 127.0.0.1:`port` (0 = ephemeral; the chosen port
    /// is readable via port()). Returns false with `err` set on failure.
    bool bind_loopback(std::uint16_t port, std::string& err) {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) {
            err = std::string("socket: ") + std::strerror(errno);
            return false;
        }
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        struct sockaddr_in addr;
        std::memset(&addr, 0, sizeof(addr));
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(port);
        if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0) {
            err = std::string("bind: ") + std::strerror(errno);
            ::close(fd);
            return false;
        }
        if (::listen(fd, 64) < 0) {
            err = std::string("listen: ") + std::strerror(errno);
            ::close(fd);
            return false;
        }
        socklen_t len = sizeof(addr);
        if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) < 0) {
            err = std::string("getsockname: ") + std::strerror(errno);
            ::close(fd);
            return false;
        }
        sock_ = Socket(fd);
        port_ = ntohs(addr.sin_port);
        return true;
    }

    /// Accepts one connection within `timeout_ms` (Timeout when none
    /// arrived; the acceptor loop interleaves this with its stop check).
    IoResult accept(Socket& out, int timeout_ms) {
        const std::int64_t deadline =
            timeout_ms < 0 ? -1 : posix::now_ms() + timeout_ms;
        for (;;) {
            const int ready = posix::poll_until(sock_.fd(), POLLIN, deadline);
            if (ready == 0) return IoResult::Timeout;
            if (ready < 0) return IoResult::Error;
            const int fd = ::accept(sock_.fd(), nullptr, nullptr);
            if (fd >= 0) {
                const int one = 1;
                ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
                out = Socket(fd);
                out.set_nonblocking();
                return IoResult::Ok;
            }
            if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
                errno == ECONNABORTED) {
                continue;
            }
            return IoResult::Error;
        }
    }

    bool valid() const { return sock_.valid(); }
    int fd() const { return sock_.fd(); }
    std::uint16_t port() const { return port_; }
    void close() { sock_.close(); }

private:
    Socket sock_;
    std::uint16_t port_ = 0;
};

/// Client-side connect to 127.0.0.1-style dotted-quad `host`.
inline bool connect_tcp(const std::string& host, std::uint16_t port,
                        int timeout_ms, Socket& out, std::string& err) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        err = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        err = "bad address: " + host;
        ::close(fd);
        return false;
    }
    // Loopback connects complete (or fail) synchronously; a blocking connect
    // with EINTR restart is enough for the same-host clients this serves.
    (void)timeout_ms;
    for (;;) {
        if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) == 0) {
            break;
        }
        if (errno == EINTR) continue;
        err = std::string("connect: ") + std::strerror(errno);
        ::close(fd);
        return false;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    out = Socket(fd);
    // Non-blocking only AFTER the (synchronous loopback) connect, so the
    // connect path stays simple while all I/O is deadline-correct.
    out.set_nonblocking();
    return true;
}

} // namespace dtree::net

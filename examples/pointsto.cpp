// Var-points-to analysis through the soufflette Datalog engine — the
// workload class of the paper's Fig. 5a (Doop-style, insertion-heavy),
// expressed as an actual Datalog program and evaluated bottom-up with the
// specialized concurrent B-tree as relation storage.
//
//   ./build/examples/pointsto [scale] [threads]

#include <cstdio>
#include <cstdlib>

#include "datalog/program.h"
#include "datalog/workloads.h"
#include "util/timer.h"

int main(int argc, char** argv) {
    using namespace dtree::datalog;
    const std::size_t scale = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3000;
    const unsigned threads =
        argc > 2 ? static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10)) : 4;

    const Workload w = make_doop_like(scale, /*seed=*/7);
    std::printf("== Andersen-style points-to (scale %zu, %u threads) ==\n%s\n",
                scale, threads, w.source.c_str());

    DefaultEngine engine(compile(w.source));
    std::size_t facts = 0;
    for (const auto& [rel, tuples] : w.facts) {
        engine.add_facts(rel, tuples);
        facts += tuples.size();
    }
    std::printf("loaded %zu input facts\n", facts);

    dtree::util::Timer timer;
    engine.run(threads);
    const double secs = timer.elapsed_s();

    for (const auto& out : w.output_relations) {
        std::printf("  %-10s : %zu tuples\n", out.c_str(), engine.relation(out).size());
    }

    const EngineStats s = engine.stats();
    std::printf("\nevaluation took %.3f s\n", secs);
    std::printf("inserts: %llu, membership: %llu, bounds: %llu/%llu\n",
                static_cast<unsigned long long>(s.ops.inserts),
                static_cast<unsigned long long>(s.ops.membership_tests),
                static_cast<unsigned long long>(s.ops.lower_bound_calls),
                static_cast<unsigned long long>(s.ops.upper_bound_calls));
    std::printf("produced %llu tuples from %llu inputs in %llu fixpoint iterations\n",
                static_cast<unsigned long long>(s.produced_tuples),
                static_cast<unsigned long long>(s.input_tuples),
                static_cast<unsigned long long>(s.iterations));
    std::printf("operation hint hit rate: %.1f%%\n", 100.0 * s.hints.hit_rate());
    return 0;
}

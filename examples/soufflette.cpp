// soufflette — a standalone Datalog runner in the spirit of the Soufflé CLI,
// built entirely on this repository's engine and the specialized concurrent
// B-tree. The fifth example, and the closest thing to "using the system":
//
//   ./build/examples/soufflette program.dl --facts=DIR --output=DIR --jobs=8
//
// Input relations (`.decl r(...) input`) are loaded from DIR/r.facts
// (tab-separated unsigned integers, one tuple per line); output relations
// are written to DIR/r.csv. --stats prints Table-2-style statistics.
//
// Try it on the bundled example:
//   ./build/examples/soufflette examples/programs/reachability.dl \
//       --facts=examples/programs/reachability_facts --output=/tmp --stats

#include <cstdio>
#include <cstdlib>
#include <string>

#include "datalog/io.h"
#include "datalog/program.h"
#include "util/cli.h"
#include "util/timer.h"

int main(int argc, char** argv) {
    using namespace dtree::datalog;

    if (argc < 2 || argv[1][0] == '-') {
        std::fprintf(stderr,
                     "usage: %s <program.dl> [--facts=DIR] [--output=DIR] "
                     "[--jobs=N] [--stats]\n",
                     argv[0]);
        return 2;
    }
    const std::string program_path = argv[1];
    dtree::util::Cli cli(argc - 1, argv + 1);
    const std::string facts_dir = cli.get_str("facts", ".");
    const std::string output_dir = cli.get_str("output", ".");
    const unsigned jobs = static_cast<unsigned>(cli.get_u64("jobs", 1));

    try {
        const AnalyzedProgram prog = compile(read_text_file(program_path));
        DefaultEngine engine(prog);

        for (const auto& decl : prog.decls) {
            if (!decl.is_input) continue;
            const std::string path = facts_dir + "/" + decl.name + ".facts";
            const auto facts =
                read_fact_file(path, decl.attribute_types, engine.symbols());
            engine.add_facts(decl.name, facts);
            std::printf("loaded %zu facts into %s\n", facts.size(), decl.name.c_str());
        }

        dtree::util::Timer timer;
        engine.run(jobs);
        std::printf("evaluation finished in %.3f s on %u job(s)\n", timer.elapsed_s(),
                    jobs);

        for (const auto& decl : prog.decls) {
            if (!decl.is_output) continue;
            const auto tuples = engine.tuples(decl.name);
            const std::string path = output_dir + "/" + decl.name + ".csv";
            write_fact_file(path, decl.attribute_types, tuples, engine.symbols());
            std::printf("wrote %zu tuples to %s\n", tuples.size(), path.c_str());
        }

        if (cli.get_bool("profile")) {
            std::printf("\n-- rule profile (hottest first) --\n");
            for (const auto& p : engine.profile()) {
                std::printf("%8.3f s  %6llu evals  %s%s (rule #%zu)\n", p.seconds,
                            static_cast<unsigned long long>(p.evaluations),
                            p.head.c_str(), p.recursive ? " [recursive]" : "",
                            p.rule_index);
            }
        }

        if (cli.get_bool("stats")) {
            const EngineStats s = engine.stats();
            std::printf("\n-- statistics --\n");
            std::printf("relations: %zu, rules: %zu, fixpoint iterations: %llu\n",
                        s.relations, s.rules,
                        static_cast<unsigned long long>(s.iterations));
            std::printf("inserts: %llu, membership: %llu, bounds: %llu/%llu\n",
                        static_cast<unsigned long long>(s.ops.inserts),
                        static_cast<unsigned long long>(s.ops.membership_tests),
                        static_cast<unsigned long long>(s.ops.lower_bound_calls),
                        static_cast<unsigned long long>(s.ops.upper_bound_calls));
            std::printf("input tuples: %llu, produced tuples: %llu\n",
                        static_cast<unsigned long long>(s.input_tuples),
                        static_cast<unsigned long long>(s.produced_tuples));
            std::printf("hint hit rate: %.1f%%\n", 100.0 * s.hints.hit_rate());
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}

// soufflette — a standalone Datalog runner in the spirit of the Soufflé CLI,
// built entirely on this repository's engine and the specialized concurrent
// B-tree. The fifth example, and the closest thing to "using the system":
//
//   ./build/examples/soufflette program.dl --facts=DIR --output=DIR --jobs=8
//
// Input relations (`.decl r(...) input`) are loaded from DIR/r.facts
// (tab-separated unsigned integers, one tuple per line); output relations
// are written to DIR/r.csv. --stats prints Table-2-style statistics.
// --profile prints a per-rule breakdown; --profile=FILE additionally writes
// a machine-readable JSON record {runtime, stats, profile, scheduler,
// metrics} to FILE (Soufflé-profiler style).
// --sched=blocks|steal picks the parallel scheduler (default: steal, or
// DATATREE_SCHED); --grain=N sets the work-stealing chunk size in tuples
// (default 64, or DATATREE_GRAIN) — work that fits one grain runs inline.
// --serve-probe[=N] switches to the snapshot-enabled storage and spawns N
// reader threads (default 1) that pin Relation snapshots and issue point /
// range queries WHILE evaluation runs, cross-checking each snapshot for
// internal consistency (sorted, repeatable, membership-closed); snapshot
// and epoch-retention statistics then show up in --stats / --profile JSON.
// --serve[=FILE] turns the runner into a long-running service (DESIGN.md
// §12): after the initial fixpoint, a command stream (stdin, or a script
// FILE) buffers new facts and group-commits them through Engine::ingest() /
// refixpoint(); per-commit latency lands in a p50/p99/p999 histogram
// reported by --stats and --profile JSON. Combined with --serve-probe, the
// reader threads keep pinning snapshots while batches commit.
// --combine[=N] switches to the combining-enabled storage (DESIGN.md §14):
// inserts that keep losing optimistic validation fall back to hot-leaf
// elimination/combining after N consecutive retries (default 2; N=0 routes
// every insert through the adaptive path). Ignored under --serve-probe /
// --listen, which select the snapshot storage instead.
// --fingerprints switches to the leaf-layout-v2 storage (DESIGN.md §15):
// membership tests resolve through per-leaf SIMD fingerprint probes and
// in-leaf inserts append instead of shifting. Mutually exclusive with
// --combine; ignored under --serve-probe / --listen like --combine.
// --listen[=PORT] starts the TCP wire-protocol server (DESIGN.md §13) after
// the initial fixpoint: concurrent sessions answer QUERY/RANGE/COUNT against
// pinned snapshots while COMMITs group-commit through one writer thread;
// PORT omitted or 0 picks an ephemeral port (printed on startup). The
// process drains and exits cleanly on SIGINT/SIGTERM. Both the stdin loop
// and the wire server dispatch through the same datalog::EngineService, so
// the two surfaces cannot diverge.
//
// Try it on the bundled example:
//   ./build/examples/soufflette examples/programs/reachability.dl
//       --facts=examples/programs/reachability_facts --output=/tmp --stats

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "datalog/io.h"
#include "datalog/program.h"
#include "datalog/service.h"
#include "net/server.h"
#include "runtime/scheduler.h"
#include "util/cli.h"
#include "util/histogram.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace {

using namespace dtree::datalog;

/// Storage policy (--combine[=N] / --fingerprints); parsed once in main by
/// bench::parse_storage_policy, consulted by the engine dispatch below and
/// the threshold plumbing in run_soufflette.
dtree::bench::StoragePolicy g_policy;

/// What one serve-probe reader observed. Merged and reported after the run.
struct ProbeTally {
    unsigned long long pins = 0;
    unsigned long long scans = 0;
    unsigned long long points = 0;
    unsigned long long tuples = 0;
    unsigned long long epoch_max = 0;
    bool consistent = true;
};

/// One reader's probe loop: pin a snapshot per relation, then verify on the
/// pinned epoch that (a) full-range iteration is strictly sorted, (b) a
/// second iteration replays the identical cardinality (snapshots are
/// immutable even while writers run), (c) sampled members test positive via
/// contains(), and (d) a prefix range scan around a sampled member finds it.
template <typename EngineT>
void probe_loop(const EngineT& engine, const std::vector<std::string>& rels,
                const std::atomic<bool>& stop, unsigned tid, ProbeTally& tally) {
    const std::uint64_t salt = 0x9e3779b97f4a7c15ull * (tid + 1);
    for (bool final_sweep = false;;) {
        // Latch stop BEFORE the sweep: the sweep that observes it still runs
        // in full, so the end-of-run epoch publish is always probed. (The
        // old do/while broke out the moment stop was seen, skipping it.)
        if (stop.load(std::memory_order_acquire)) final_sweep = true;
        for (const auto& name : rels) {
            const auto& rel = engine.relation(name);
            const auto snap = rel.snapshot();
            ++tally.pins;
            tally.epoch_max = std::max(
                tally.epoch_max,
                static_cast<unsigned long long>(snap.epoch()));
            bool ok = true;
            std::size_t n = 0;
            StorageTuple prev{}, sample{};
            bool have = false, have_sample = false;
            snap.for_each([&](const StorageTuple& t) {
                if (have && !(prev < t)) ok = false;
                prev = t;
                have = true;
                if ((salt + ++n) % 97 == 0) {
                    sample = t;
                    have_sample = true;
                }
            });
            std::size_t replay = 0;
            snap.for_each([&](const StorageTuple&) { ++replay; });
            if (replay != n) ok = false;
            ++tally.scans;
            tally.tuples += n;
            if (have) {
                ++tally.points;
                if (!snap.contains(prev)) ok = false;
            }
            if (have_sample) {
                ++tally.points;
                if (!snap.contains(sample)) ok = false;
                std::size_t hits = 0;
                snap.scan_prefix(sample, 1,
                                 [&](const StorageTuple&) { ++hits; });
                if (hits == 0) ok = false; // sample itself lies in the range
                ++tally.scans;
            }
            if (!ok) tally.consistent = false;
        }
        if (final_sweep) break;
    }
}

/// Serve-loop tallies: per-commit latency plus totals, reported by --stats
/// and the --profile JSON "ingest" section.
struct ServeStats {
    dtree::util::Histogram latency; ///< ns per commit (ingest + refixpoint)
    unsigned long long commits = 0;
    unsigned long long new_tuples = 0;
    unsigned long long refixpoint_iterations = 0;
};

/// The --serve command stream, one command per line (stdin or a script
/// file). Command errors report and continue — a service survives bad input.
///
///   fact REL v1 [v2 ...]   buffer one typed fact (symbol columns interned)
///   load REL PATH          buffer a whole .facts file for REL
///   commit                 group-commit buffered facts, then refixpoint
///   query REL v1 [v2 ...]  point membership (typed columns; prints epoch on
///                          snapshot-capable storage)
///   scan REL [v1 ...]      prefix range scan: tuples whose leading columns
///                          equal the given values (none = full scan)
///   count REL              print REL's current tuple count
///   quit                   leave the loop (EOF also commits an open batch)
///
/// All dispatch goes through datalog::EngineService — the same layer the
/// wire-protocol server uses, so `query` over stdin and QUERY over TCP
/// cannot drift apart.
template <typename EngineT>
void serve_loop(EngineT& engine, std::istream& in, unsigned jobs, ServeStats& st) {
    EngineService<EngineT> svc(engine);
    typename EngineService<EngineT>::Batch batch;
    auto commit = [&] {
        if (batch.empty()) {
            std::printf("nothing to commit\n");
            return;
        }
        dtree::util::Timer timer;
        const auto res = svc.commit(batch, jobs);
        const std::uint64_t ns = timer.elapsed_ns();
        st.latency.record(ns);
        ++st.commits;
        st.new_tuples += res.fresh;
        st.refixpoint_iterations += res.iterations;
        std::printf("committed %llu new tuple(s), %llu refixpoint iteration(s), "
                    "%.3f ms\n",
                    static_cast<unsigned long long>(res.fresh),
                    static_cast<unsigned long long>(res.iterations),
                    static_cast<double>(ns) / 1e6);
    };
    /// Parses the remaining tokens of `ss` as typed columns of `d`; requires
    /// exactly `want` of them (the query arity or the scan prefix length).
    auto parse_columns = [&](const std::string& cmd, const RelationDecl& d,
                             std::istringstream& ss, std::size_t want,
                             StorageTuple& t) {
        std::string tok;
        for (std::size_t c = 0; c < want; ++c) {
            if (!(ss >> tok)) {
                throw std::runtime_error(cmd + ": expected " +
                                         std::to_string(want) + " column(s) for " +
                                         d.name);
            }
            t[c] = svc.parse_column(d, static_cast<unsigned>(c), tok);
        }
        if (ss >> tok) {
            throw std::runtime_error(cmd + ": trailing characters after column " +
                                     std::to_string(want));
        }
    };
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r') line.pop_back();
        std::istringstream ss(line);
        std::string cmd;
        if (!(ss >> cmd) || cmd[0] == '#') continue;
        try {
            if (cmd == "fact") {
                std::string rel;
                if (!(ss >> rel)) throw std::runtime_error("fact: missing relation");
                const RelationDecl& d = svc.decl(rel);
                StorageTuple t{};
                parse_columns(cmd, d, ss, d.arity(), t);
                batch[rel].push_back(t);
            } else if (cmd == "load") {
                std::string rel, path;
                if (!(ss >> rel >> path)) {
                    throw std::runtime_error("load: usage: load REL PATH");
                }
                const auto facts = read_fact_file(
                    path, svc.decl(rel).attribute_types, engine.symbols());
                auto& b = batch[rel];
                b.insert(b.end(), facts.begin(), facts.end());
                std::printf("buffered %zu fact(s) for %s\n", facts.size(), rel.c_str());
            } else if (cmd == "commit") {
                commit();
            } else if (cmd == "query") {
                std::string rel;
                if (!(ss >> rel)) throw std::runtime_error("query: missing relation");
                const RelationDecl& d = svc.decl(rel);
                StorageTuple t{};
                parse_columns(cmd, d, ss, d.arity(), t);
                const auto res = svc.query(rel, t);
                if (EngineService<EngineT>::snapshots) {
                    std::printf("%s (epoch %llu)\n", res.found ? "present" : "absent",
                                static_cast<unsigned long long>(res.epoch));
                } else {
                    std::printf("%s\n", res.found ? "present" : "absent");
                }
            } else if (cmd == "scan") {
                std::string rel;
                if (!(ss >> rel)) throw std::runtime_error("scan: missing relation");
                const RelationDecl& d = svc.decl(rel);
                // Prefix length = however many column values follow.
                std::vector<std::string> toks;
                std::string tok;
                while (ss >> tok) toks.push_back(tok);
                if (toks.size() > d.arity()) {
                    throw std::runtime_error("scan: more columns than the arity of " +
                                             rel);
                }
                StorageTuple bound{};
                for (std::size_t c = 0; c < toks.size(); ++c) {
                    bound[c] = svc.parse_column(d, static_cast<unsigned>(c), toks[c]);
                }
                std::size_t n = 0;
                const std::uint64_t epoch =
                    svc.scan(rel, bound, static_cast<unsigned>(toks.size()),
                             [&](const StorageTuple& t) {
                                 std::printf("%s\n", svc.format_tuple(d, t).c_str());
                                 ++n;
                             });
                if (EngineService<EngineT>::snapshots) {
                    std::printf("%zu tuple(s) (epoch %llu)\n", n,
                                static_cast<unsigned long long>(epoch));
                } else {
                    std::printf("%zu tuple(s)\n", n);
                }
            } else if (cmd == "count") {
                std::string rel;
                if (!(ss >> rel)) throw std::runtime_error("count: missing relation");
                svc.decl(rel);
                std::printf("%s: %llu tuple(s)\n", rel.c_str(),
                            static_cast<unsigned long long>(svc.count(rel).tuples));
            } else if (cmd == "quit") {
                break;
            } else {
                throw std::runtime_error("unknown command: " + cmd);
            }
        } catch (const std::exception& e) {
            std::fprintf(stderr, "serve: %s\n", e.what());
        }
    }
    if (!batch.empty()) commit(); // EOF flushes an open batch
}

template <typename EngineT>
int run_soufflette(const std::string& program_path, const dtree::util::Cli& cli,
                   unsigned probe_threads) {
    const std::string facts_dir = cli.get_str("facts", ".");
    const std::string output_dir = cli.get_str("output", ".");
    const unsigned jobs = static_cast<unsigned>(cli.get_u64("jobs", 1));
    const std::string sched = cli.get_str("sched", "");
    const std::size_t grain = cli.get_u64("grain", 0);

    const AnalyzedProgram prog = compile(read_text_file(program_path));
    EngineT engine(prog);
    if (!sched.empty() && sched != "1") {
        dtree::runtime::SchedMode mode;
        if (!dtree::runtime::parse_mode(sched, mode)) {
            std::fprintf(stderr, "unknown --sched=%s (blocks|steal)\n",
                         sched.c_str());
            return 2;
        }
        engine.set_scheduler_mode(mode);
    }
    if (grain) engine.set_grain(grain);
    if (g_policy.combine_threshold_set) {
        // Bare --combine keeps the tree's default trigger threshold;
        // --combine=N overrides it. No-op on storages without the combining
        // policy (e.g. under --listen).
        engine.set_combine_threshold(g_policy.combine_threshold);
    }

    for (const auto& decl : prog.decls) {
        if (!decl.is_input) continue;
        const std::string path = facts_dir + "/" + decl.name + ".facts";
        const auto facts =
            read_fact_file(path, decl.attribute_types, engine.symbols());
        engine.add_facts(decl.name, facts);
        std::printf("loaded %zu facts into %s\n", facts.size(), decl.name.c_str());
    }

    // --serve-probe: reader threads pinning snapshots while the engine runs.
    std::atomic<bool> probe_stop{false};
    std::vector<ProbeTally> tallies(probe_threads);
    std::vector<std::thread> probes;
    std::vector<std::string> probe_rels;
    if constexpr (EngineT::RelationT::snapshot_capable) {
        for (const auto& decl : prog.decls) probe_rels.push_back(decl.name);
        probes.reserve(probe_threads);
        for (unsigned t = 0; t < probe_threads; ++t) {
            probes.emplace_back([&engine, &probe_rels, &probe_stop, &tallies, t] {
                probe_loop(engine, probe_rels, probe_stop, t, tallies[t]);
            });
        }
    }

    dtree::util::Timer timer;
    engine.run(jobs);
    const double runtime_s = timer.elapsed_s();
    std::printf("evaluation finished in %.3f s on %u job(s)\n", runtime_s, jobs);

    // --listen: the wire-protocol server runs AFTER the initial fixpoint and
    // blocks until SIGINT/SIGTERM (drain: in-flight commits finish, sessions
    // flush, then we fall through to outputs/stats). serve-probe readers keep
    // pinning snapshots alongside the remote sessions.
    bool net_consistent = true;
    if constexpr (EngineT::RelationT::snapshot_capable) {
        if (cli.has("listen")) {
            const std::string port_str = cli.get_str("listen", "1");
            dtree::net::ServerConfig cfg;
            // Bare --listen (the CLI stores "1" for valueless flags) means
            // "pick an ephemeral port", same as an explicit --listen=0.
            cfg.port = port_str == "1"
                ? 0
                : static_cast<std::uint16_t>(cli.get_u64("listen", 0));
            cfg.jobs = jobs;
            dtree::net::Server<EngineT> server(engine, cfg);
            dtree::net::install_signal_handlers(&server.stop_controller());
            server.start();
            std::printf("listening on 127.0.0.1:%u (SIGINT/SIGTERM drains and "
                        "exits)\n",
                        server.port());
            std::fflush(stdout);
            server.wait();
            dtree::net::install_signal_handlers(nullptr);
            const auto& c = server.counters();
            std::printf("wire server: %llu connection(s), %llu frame(s) in / "
                        "%llu out, %llu commit(s) queued in %llu group(s), "
                        "%llu timeout(s), %llu shed\n",
                        static_cast<unsigned long long>(c.connections.load()),
                        static_cast<unsigned long long>(c.frames_in.load()),
                        static_cast<unsigned long long>(c.frames_out.load()),
                        static_cast<unsigned long long>(c.commits_queued.load()),
                        static_cast<unsigned long long>(c.group_commits.load()),
                        static_cast<unsigned long long>(c.timeouts.load()),
                        static_cast<unsigned long long>(c.sessions_shed.load()));
        }
    } else if (cli.has("listen")) {
        std::fprintf(stderr,
                     "--listen requires snapshot-capable storage (internal "
                     "dispatch error)\n");
        net_consistent = false;
    }

    // --serve: the command loop runs AFTER the initial fixpoint; serve-probe
    // readers (if any) keep pinning snapshots while batches commit.
    ServeStats serve;
    if (cli.has("serve")) {
        const std::string src = cli.get_str("serve", "1");
        std::ifstream script;
        std::istream* in = &std::cin;
        if (src != "1") {
            script.open(src);
            if (!script) {
                std::fprintf(stderr, "cannot open serve script %s\n", src.c_str());
                probe_stop.store(true, std::memory_order_release);
                for (auto& th : probes) th.join();
                return 1;
            }
            in = &script;
        }
        serve_loop(engine, *in, jobs, serve);
    }

    probe_stop.store(true, std::memory_order_release);
    for (auto& th : probes) th.join();

    bool probes_consistent = true;
    if (!probes.empty()) {
        ProbeTally total;
        for (const auto& t : tallies) {
            total.pins += t.pins;
            total.scans += t.scans;
            total.points += t.points;
            total.tuples += t.tuples;
            total.epoch_max = std::max(total.epoch_max, t.epoch_max);
            total.consistent = total.consistent && t.consistent;
        }
        probes_consistent = total.consistent;
        std::printf("serve-probe: %u reader(s), %llu snapshots, %llu scans "
                    "(%llu tuples), %llu point probes, max epoch %llu, "
                    "consistency %s\n",
                    probe_threads, total.pins, total.scans, total.tuples,
                    total.points, total.epoch_max,
                    total.consistent ? "OK" : "FAILED");
    }

    for (const auto& decl : prog.decls) {
        if (!decl.is_output) continue;
        const auto tuples = engine.tuples(decl.name);
        const std::string path = output_dir + "/" + decl.name + ".csv";
        write_fact_file(path, decl.attribute_types, tuples, engine.symbols());
        std::printf("wrote %zu tuples to %s\n", tuples.size(), path.c_str());
    }

    if (cli.get_bool("profile")) {
        std::printf("\n-- rule profile (hottest first) --\n");
        for (const auto& p : engine.profile()) {
            std::printf("%8.3f s  %6llu evals  %8llu tuples  %s%s (rule #%zu)\n",
                        p.seconds,
                        static_cast<unsigned long long>(p.evaluations),
                        static_cast<unsigned long long>(p.tuples),
                        p.head.c_str(), p.recursive ? " [recursive]" : "",
                        p.rule_index);
        }

        // --profile=FILE (anything but a bare boolean): also emit the
        // machine-readable record.
        const std::string profile_path = cli.get_str("profile", "");
        if (profile_path != "1" && !profile_path.empty()) {
            std::ofstream os(profile_path);
            if (!os) {
                std::fprintf(stderr, "cannot open %s for writing\n",
                             profile_path.c_str());
                return 1;
            }
            dtree::json::Writer w(os);
            w.begin_object();
            w.kv("program", program_path);
            w.kv("jobs", jobs);
            w.kv("runtime_seconds", runtime_s);
            w.key("stats");
            engine.stats().write_json(w);
            if (serve.commits) {
                w.key("ingest");
                w.begin_object();
                w.kv("commits", serve.commits);
                w.kv("new_tuples", serve.new_tuples);
                w.kv("refixpoint_iterations", serve.refixpoint_iterations);
                w.key("latency");
                serve.latency.write_json(w);
                w.end_object();
            }
            w.key("profile");
            w.begin_array();
            for (const auto& p : engine.profile()) p.write_json(w);
            w.end_array();
            w.key("scheduler");
            w.begin_object();
            w.kv("mode", dtree::runtime::mode_name(engine.scheduler_mode()));
            w.kv("grain", engine.grain());
            w.key("pool");
            dtree::runtime::Scheduler::instance().stats().write_json(w);
            w.end_object();
            w.kv("metrics_enabled", dtree::metrics::enabled());
            w.key("metrics");
            dtree::metrics::snapshot().write_json(w);
            w.end_object();
            std::printf("wrote profile to %s\n", profile_path.c_str());
        }
    }

    if (cli.get_bool("stats")) {
        const EngineStats s = engine.stats();
        std::printf("\n-- statistics --\n");
        std::printf("relations: %zu, rules: %zu, fixpoint iterations: %llu\n",
                    s.relations, s.rules,
                    static_cast<unsigned long long>(s.iterations));
        std::printf("inserts: %llu, membership: %llu, bounds: %llu/%llu\n",
                    static_cast<unsigned long long>(s.ops.inserts),
                    static_cast<unsigned long long>(s.ops.membership_tests),
                    static_cast<unsigned long long>(s.ops.lower_bound_calls),
                    static_cast<unsigned long long>(s.ops.upper_bound_calls));
        std::printf("input tuples: %llu, produced tuples: %llu\n",
                    static_cast<unsigned long long>(s.input_tuples),
                    static_cast<unsigned long long>(s.produced_tuples));
        std::printf("hint hit rate: %.1f%%\n", 100.0 * s.hints.hit_rate());
        if (serve.commits) {
            std::printf("serve: %llu commit(s), %llu new tuple(s), "
                        "%llu refixpoint iteration(s), latency p50 %.1f us / "
                        "p99 %.1f us / p999 %.1f us\n",
                        serve.commits, serve.new_tuples,
                        serve.refixpoint_iterations,
                        static_cast<double>(serve.latency.p50()) / 1e3,
                        static_cast<double>(serve.latency.p99()) / 1e3,
                        static_cast<double>(serve.latency.p999()) / 1e3);
        }
        if (s.epoch) {
            std::printf("snapshots: epoch %llu, %llu advances, %llu pins, "
                        "%llu cow images, %llu retained bytes\n",
                        static_cast<unsigned long long>(s.epoch),
                        static_cast<unsigned long long>(s.epoch_advances),
                        static_cast<unsigned long long>(s.snapshot_pins),
                        static_cast<unsigned long long>(s.snapshot_cow_images),
                        static_cast<unsigned long long>(s.snapshot_retained_bytes));
        }
        const auto ps = dtree::runtime::Scheduler::instance().stats();
        std::printf("scheduler: %s (grain %zu), %llu regions, %llu tasks, "
                    "%llu steals (%llu failed probes), %llu pool threads\n",
                    dtree::runtime::mode_name(engine.scheduler_mode()),
                    engine.grain(),
                    static_cast<unsigned long long>(ps.regions),
                    static_cast<unsigned long long>(ps.tasks),
                    static_cast<unsigned long long>(ps.steals),
                    static_cast<unsigned long long>(ps.steal_failures),
                    static_cast<unsigned long long>(ps.threads_spawned));
    }
    return probes_consistent && net_consistent ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
    if (argc < 2 || argv[1][0] == '-') {
        std::fprintf(stderr,
                     "usage: %s <program.dl> [--facts=DIR] [--output=DIR] "
                     "[--jobs=N] [--sched=blocks|steal] [--grain=N] "
                     "[--serve[=FILE]] [--serve-probe[=N]] [--listen[=PORT]] "
                     "[--combine[=N]] [--fingerprints] [--stats] "
                     "[--profile[=FILE]]\n",
                     argv[0]);
        return 2;
    }
    const std::string program_path = argv[1];
    dtree::util::Cli cli(argc - 1, argv + 1);
    const unsigned probe_threads = cli.has("serve-probe")
        ? std::max(1u, static_cast<unsigned>(cli.get_u64("serve-probe", 1)))
        : 0;

    try {
        if (!dtree::bench::parse_storage_policy(cli, g_policy)) return 2;
        if (g_policy.combine && g_policy.fingerprints) {
            std::fprintf(stderr,
                         "--combine and --fingerprints pick different "
                         "storages; pass one\n");
            return 2;
        }
        // Snapshot-capable storage whenever someone will read concurrently
        // with evaluation: probe readers or wire-protocol sessions.
        if (probe_threads || cli.has("listen")) {
            if (g_policy.combine || g_policy.fingerprints) {
                std::fprintf(stderr,
                             "note: --combine/--fingerprints are ignored with "
                             "--serve-probe/--listen (snapshot storage "
                             "selected)\n");
            }
            return run_soufflette<Engine<storage::OurBTreeSnap>>(
                program_path, cli, probe_threads);
        }
        if (g_policy.combine) {
            return run_soufflette<Engine<storage::OurBTreeCombine>>(
                program_path, cli, 0);
        }
        if (g_policy.fingerprints) {
            return run_soufflette<Engine<storage::OurBTreeFp>>(
                program_path, cli, 0);
        }
        return run_soufflette<DefaultEngine>(program_path, cli, 0);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}

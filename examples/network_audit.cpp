// Network security audit through the soufflette Datalog engine — the
// workload class of the paper's Fig. 5b (EC2-style, read-heavy): which
// instances can an internet-facing node reach, given topology, security
// groups and a deny-list?
//
//   ./build/examples/network_audit [scale] [threads]

#include <cstdio>
#include <cstdlib>

#include "datalog/program.h"
#include "datalog/workloads.h"
#include "util/timer.h"

int main(int argc, char** argv) {
    using namespace dtree::datalog;
    const std::size_t scale = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;
    const unsigned threads =
        argc > 2 ? static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10)) : 4;

    const Workload w = make_ec2_like(scale, /*seed=*/11);
    std::printf("== network reachability audit (scale %zu, %u threads) ==\n%s\n",
                scale, threads, w.source.c_str());

    DefaultEngine engine(compile(w.source));
    for (const auto& [rel, tuples] : w.facts) engine.add_facts(rel, tuples);

    dtree::util::Timer timer;
    engine.run(threads);
    const double secs = timer.elapsed_s();

    const auto exposed = engine.tuples("exposed");
    std::printf("node 0 reaches %zu instances; first few:", exposed.size());
    for (std::size_t i = 0; i < exposed.size() && i < 8; ++i) {
        std::printf(" %llu", static_cast<unsigned long long>(exposed[i][0]));
    }
    std::printf("\n");
    for (const auto& out : w.output_relations) {
        std::printf("  %-10s : %zu tuples\n", out.c_str(), engine.relation(out).size());
    }

    const EngineStats s = engine.stats();
    std::printf("\nevaluation took %.3f s\n", secs);
    const double reads = static_cast<double>(s.ops.membership_tests +
                                             s.ops.lower_bound_calls +
                                             s.ops.upper_bound_calls);
    std::printf("read/insert ratio: %.1f (read-heavy, as in the paper's Table 2)\n",
                reads / static_cast<double>(s.ops.inserts ? s.ops.inserts : 1));
    std::printf("operation hint hit rate: %.1f%% (paper reports ~77%% for this class)\n",
                100.0 * s.hints.hit_rate());
    return 0;
}

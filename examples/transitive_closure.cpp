// The paper's running example (§2, Fig. 1): semi-naïve transitive closure —
// hand-written the way Soufflé synthesises it, but parallelised with the
// specialized concurrent B-tree instead of STL's std::set.
//
//   ./build/examples/transitive_closure [nodes] [threads]
//
// The outer loop over deltaPath is partitioned over threads; only the insert
// into newPath is shared (and internally synchronised). Reads of path/edge
// need no synchronisation: the two-phase discipline guarantees no concurrent
// writer.

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "core/btree.h"
#include "core/tuple.h"
#include "util/parallel.h"
#include "util/random.h"
#include "util/timer.h"

using dtree::Tuple;
using Relation = dtree::btree_set<Tuple<2>>;

/// Fig. 1's evaluate(), parallelised.
static Relation evaluate(const Relation& edge, unsigned threads) {
    Relation path, delta_path;
    path.insert_all(edge);
    delta_path.insert_all(edge);

    while (!delta_path.empty()) {
        Relation new_path;

        // Materialise the delta for block partitioning.
        std::vector<Tuple<2>> delta(delta_path.begin(), delta_path.end());

        dtree::util::parallel_blocks(
            delta.size(), threads, [&](unsigned, std::size_t b, std::size_t e) {
                auto edge_hints = edge.create_hints();
                auto path_hints = path.create_hints();
                auto new_hints = new_path.create_hints();
                for (std::size_t i = b; i < e; ++i) {
                    const Tuple<2>& t1 = delta[i];
                    // Adjacent edges (t1[1], *) via a hinted range query.
                    auto l = edge.lower_bound(Tuple<2>{t1[1], 0}, edge_hints);
                    auto u = edge.upper_bound(Tuple<2>{t1[1], ~0ull}, edge_hints);
                    for (auto it = l; it != u; ++it) {
                        const Tuple<2> t3{t1[0], (*it)[1]};
                        if (!path.contains(t3, path_hints)) {
                            new_path.insert(t3, new_hints); // the only write
                        }
                    }
                }
            });

        path.insert_all(new_path); // hint-friendly ordered merge
        delta_path = std::move(new_path);
    }
    return path;
}

int main(int argc, char** argv) {
    const std::size_t nodes = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;
    const unsigned threads =
        argc > 2 ? static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10)) : 4;

    // A random sparse graph: ~4 edges per node.
    Relation edge;
    dtree::util::Rng rng(42);
    {
        auto hints = edge.create_hints();
        for (std::size_t i = 0; i < nodes * 4; ++i) {
            edge.insert(Tuple<2>{dtree::util::uniform_int<std::uint64_t>(rng, 0, nodes - 1),
                                 dtree::util::uniform_int<std::uint64_t>(rng, 0, nodes - 1)},
                        hints);
        }
    }
    std::printf("graph: %zu nodes, %zu edges, %u threads\n", nodes, edge.size(), threads);

    dtree::util::Timer timer;
    Relation path = evaluate(edge, threads);
    const double secs = timer.elapsed_s();

    std::printf("transitive closure: %zu path tuples in %.3f s (%.2f M tuples/s)\n",
                path.size(), secs, static_cast<double>(path.size()) / secs / 1e6);
    return 0;
}

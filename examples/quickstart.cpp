// Quickstart: the specialized concurrent B-tree's public API in two minutes.
//
//   cmake --build build && ./build/examples/quickstart
//
// Shows: construction, (hinted) insertion, membership tests, range queries,
// iteration, concurrent insertion from several threads, and hint statistics.

#include <cstdio>
#include <thread>
#include <vector>

#include "core/btree.h"
#include "core/tuple.h"

int main() {
    using dtree::Tuple;

    // A concurrent set of 2-D tuples, ordered lexicographically.
    dtree::btree_set<Tuple<2>> relation;

    // --- single-threaded use, exactly like std::set -------------------------
    relation.insert(Tuple<2>{1, 2});
    relation.insert(Tuple<2>{1, 3});
    relation.insert(Tuple<2>{2, 1});
    std::printf("size after 3 inserts: %zu\n", relation.size());
    std::printf("contains (1,3): %s\n", relation.contains(Tuple<2>{1, 3}) ? "yes" : "no");
    std::printf("duplicate insert returns: %s\n",
                relation.insert(Tuple<2>{1, 2}) ? "true" : "false");

    // --- range queries: all tuples with first component == 1 ----------------
    std::printf("tuples (1,*):");
    for (auto it = relation.lower_bound(Tuple<2>{1, 0}),
              e = relation.upper_bound(Tuple<2>{1, ~0ull});
         it != e; ++it) {
        std::printf(" (%llu,%llu)", static_cast<unsigned long long>((*it)[0]),
                    static_cast<unsigned long long>((*it)[1]));
    }
    std::printf("\n");

    // --- operation hints: cache the last-touched leaf per thread ------------
    // Sorted workloads (the Datalog common case) skip most tree traversals.
    auto hints = relation.create_hints();
    for (std::uint64_t i = 0; i < 100000; ++i) {
        relation.insert(Tuple<2>{i / 100, i % 100}, hints);
    }
    // Re-derivation: Datalog rules constantly re-insert existing tuples.
    for (std::uint64_t i = 0; i < 100000; ++i) {
        relation.insert(Tuple<2>{i / 100, i % 100}, hints);
    }
    std::printf("hint hit rate over sorted inserts + re-inserts: %.1f%%\n",
                100.0 * hints.stats.hit_rate());

    // --- concurrent insertion ------------------------------------------------
    // insert() is fully thread-safe against other insert() calls; reads must
    // happen in a separate phase (the semi-naive evaluation discipline).
    dtree::btree_set<Tuple<2>> shared;
    std::vector<std::thread> team;
    for (unsigned t = 0; t < 4; ++t) {
        team.emplace_back([&shared, t] {
            auto h = shared.create_hints(); // hints are per-thread
            for (std::uint64_t i = t; i < 400000; i += 4) {
                shared.insert(Tuple<2>{i, i + 1}, h);
            }
        });
    }
    for (auto& th : team) th.join();
    std::printf("parallel phase inserted %zu tuples\n", shared.size());

    // Read phase: unsynchronised queries and ordered iteration.
    std::uint64_t checksum = 0;
    for (const auto& t : shared) checksum += t[1];
    std::printf("ordered scan checksum: %llu\n",
                static_cast<unsigned long long>(checksum));

    auto s = shared.stats();
    std::printf("tree: %zu leaves, %zu inner nodes, depth %zu, %.1f MB\n",
                s.leaf_nodes, s.inner_nodes, s.depth,
                static_cast<double>(s.memory_bytes) / (1024 * 1024));
    return 0;
}
